use super::{Activation, Param};
use crate::quant::{self, QuantSpec};
use adapex_tensor::gemm::{gemm, gemm_a_bt, gemm_at_b};
use adapex_tensor::int2::{self, OutMajor};
use adapex_tensor::rng::kaiming_tensor;
use adapex_tensor::workspace::with_workspace;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Fully-connected layer with fake-quantized weights.
///
/// Weight layout is `[out_features, in_features]`; on the FPGA this maps
/// directly onto one MVTU (paper Sec. II). The quantized weight view is
/// cached against the weight [`Param`] version, so repeated eval batches
/// (e.g. threshold sweeps) quantize once.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantLinear {
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
    /// Full-precision weights, `[out_features, in_features]`.
    pub weight: Param,
    /// Bias, `[out_features]`.
    pub bias: Param,
    /// Weight quantizer.
    pub weight_spec: QuantSpec,
    /// Backward-pass cache; buffers persist across batches.
    #[serde(skip)]
    cache: LinearCache,
    #[serde(skip)]
    cache_valid: bool,
    /// Quantized-weight view, keyed by the weight [`Param`] version.
    #[serde(skip)]
    qcache: Option<QCache>,
}

impl PartialEq for QuantLinear {
    fn eq(&self, other: &Self) -> bool {
        // Caches are derived state; equality is structural.
        self.in_features == other.in_features
            && self.out_features == other.out_features
            && self.weight == other.weight
            && self.bias == other.bias
            && self.weight_spec == other.weight_spec
    }
}

#[derive(Debug, Clone, Default)]
struct LinearCache {
    input: Vec<f32>,
    n: usize,
    qweight: Vec<f32>,
    scales: Vec<f32>,
}

/// Quantized view of the weight tensor at one [`Param`] version.
#[derive(Debug, Clone, Default)]
struct QCache {
    version: u64,
    qweight: Vec<f32>,
    scales: Vec<f32>,
    /// Exact integer weight codes (`qweight / scale`, each in
    /// `{-2..1}`), derived lazily for the int2 eval path only.
    wcodes: Vec<f32>,
    /// Bit-plane packed `wcodes` for the popcount engine.
    planes: Vec<u64>,
    /// Weight version `wcodes`/`planes` were derived at (`None` until
    /// the first int2 eval forward, so training never pays for them).
    int2_version: Option<u64>,
}

impl QuantLinear {
    /// New layer with Kaiming-initialised weights.
    pub fn new(
        in_features: usize,
        out_features: usize,
        weight_spec: QuantSpec,
        rng: &mut StdRng,
    ) -> Self {
        let weight = kaiming_tensor(&[out_features, in_features], in_features, rng).into_vec();
        QuantLinear {
            in_features,
            out_features,
            weight: Param::new(weight),
            bias: Param::new(vec![0.0; out_features]),
            weight_spec,
            cache: LinearCache::default(),
            cache_valid: false,
            qcache: None,
        }
    }

    /// Refreshes the quantized-weight view if the weight param changed
    /// since it was last derived.
    fn ensure_qweights(&mut self) {
        let version = self.weight.version();
        if self.qcache.as_ref().is_some_and(|qc| qc.version == version) {
            return;
        }
        let mut qc = self.qcache.take().unwrap_or_default();
        quant::quantize_weights_per_row_into(
            &self.weight.value,
            self.in_features,
            self.weight_spec,
            &mut qc.qweight,
            &mut qc.scales,
        );
        qc.version = version;
        self.qcache = Some(qc);
    }

    /// Extends the quantized-weight view with the int2 engine's derived
    /// forms (integer codes + packed bit planes).
    fn ensure_int2(&mut self) {
        self.ensure_qweights();
        let version = self.weight.version();
        let qc = self.qcache.as_mut().expect("qcache just ensured");
        if qc.int2_version == Some(version) {
            return;
        }
        int2::weight_codes_into(&qc.qweight, &qc.scales, self.in_features, &mut qc.wcodes);
        int2::pack_weights_int2(&qc.wcodes, self.out_features, self.in_features, &mut qc.planes);
        qc.int2_version = Some(version);
    }

    /// The activation grid step when this forward can take the
    /// code-domain int2 path: signed 2-bit weights and an input stamped
    /// as 2-bit quantized (train and eval — QuantReLU stamps both).
    fn int2_act_scale(&self, x: &Activation) -> Option<f32> {
        if !self.weight_spec.is_int2_weight() {
            return None;
        }
        let q = x.quant?;
        (q.bits == 2 && q.scale > 0.0).then_some(q.scale)
    }

    /// Code-domain forward (layer ↦ MVTU): exact integer dot products
    /// over the 2-bit codes, then one fused requantize+bias epilogue.
    /// The popcount engine and the `ADAPEX_NO_INT2` f32 fallback
    /// compute the same integers, so this is bit-identical across
    /// backends and escape hatches. Shared by eval and (via
    /// [`QuantLinear::forward`]) training forwards of stamped inputs;
    /// the caller owns the backward-cache bookkeeping.
    fn forward_int2(&mut self, x: &Activation, ascale: f32) -> Activation {
        self.ensure_int2();
        let qc = self.qcache.as_ref().expect("qcache just ensured");
        let (m, k, n) = (self.out_features, self.in_features, x.n);
        let mut out = Activation::zeros(n, &[m]);
        with_workspace(|ws| {
            // Combined per-row requantize scale: cs = wscale * ascale.
            ws.scratch2.clear();
            ws.scratch2.extend(qc.scales.iter().map(|&s| s * ascale));
            // Exact integer activation codes.
            ws.scratch.clear();
            ws.scratch.extend_from_slice(&x.data);
            int2::act_codes_in_place(&mut ws.scratch, ascale);
            if int2::enabled() {
                int2::pack_acts_int2(&ws.scratch, n, k, &mut ws.bits);
                int2::gemm_int2(
                    m,
                    k,
                    n,
                    &qc.planes,
                    &ws.bits,
                    &ws.scratch2,
                    &self.bias.value,
                    &mut out.data,
                    OutMajor::Col,
                );
            } else {
                // Escape hatch: the f32 GEMM over code values computes
                // the same integer sums exactly (all partials < 2^24,
                // no FMA), then the identical epilogue.
                gemm_a_bt(n, k, m, &ws.scratch, &qc.wcodes, &mut out.data);
                int2::requantize_cols(&mut out.data, &ws.scratch2, &self.bias.value);
            }
        });
        out
    }

    /// Snapshots everything the STE backward needs (input values,
    /// fake-quant weights, per-row scales) after a training forward.
    fn cache_for_backward(&mut self, x: &Activation) {
        let qc = self.qcache.as_ref().expect("qcache ensured by forward");
        self.cache.input.clear();
        self.cache.input.extend_from_slice(&x.data);
        self.cache.n = x.n;
        self.cache.qweight.clear();
        self.cache.qweight.extend_from_slice(&qc.qweight);
        self.cache.scales.clear();
        self.cache.scales.extend_from_slice(&qc.scales);
        self.cache_valid = true;
    }

    /// Forward pass: `y = x W^T + b`.
    ///
    /// Training forwards over stamped 2-bit inputs take the same
    /// code-domain route as eval (train/eval forward values are
    /// bit-identical); only the backward differs — STE over the cached
    /// fake-quant weights, untouched by the routing.
    ///
    /// # Panics
    ///
    /// Panics when the input feature count differs from `in_features`.
    pub fn forward(&mut self, x: &Activation, train: bool) -> Activation {
        assert_eq!(
            x.sample_len(),
            self.in_features,
            "linear input features (got {:?})",
            x.dims
        );
        if let Some(ascale) = self.int2_act_scale(x) {
            let out = self.forward_int2(x, ascale);
            if train {
                self.cache_for_backward(x);
            } else {
                self.cache_valid = false;
            }
            return out;
        }
        self.ensure_qweights();
        let qc = self.qcache.as_ref().expect("qcache just ensured");
        let mut out = Activation::zeros(x.n, &[self.out_features]);
        gemm_a_bt(
            x.n,
            self.in_features,
            self.out_features,
            &x.data,
            &qc.qweight,
            &mut out.data,
        );
        for row in out.data.chunks_mut(self.out_features) {
            for (v, &b) in row.iter_mut().zip(&self.bias.value) {
                *v += b;
            }
        }
        if train {
            self.cache_for_backward(x);
        } else {
            self.cache_valid = false;
        }
        out
    }

    /// Backward pass; returns the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if no training-mode forward preceded this call.
    pub fn backward(&mut self, grad_out: &Activation) -> Activation {
        assert!(self.cache_valid, "linear backward requires cached forward");
        self.cache_valid = false;
        let n = self.cache.n;
        assert_eq!(grad_out.n, n, "grad batch size");
        assert_eq!(grad_out.sample_len(), self.out_features, "grad features");

        // dX = dY * W  (W stored [out, in])
        let mut grad_in = Activation::zeros(n, &[self.in_features]);
        gemm(
            n,
            self.out_features,
            self.in_features,
            &grad_out.data,
            &self.cache.qweight,
            &mut grad_in.data,
        );
        // dW = dY^T * X, accumulated through pooled scratch.
        with_workspace(|ws| {
            ws.dw.clear();
            ws.dw.resize(self.out_features * self.in_features, 0.0);
            gemm_at_b(
                self.out_features,
                n,
                self.in_features,
                &grad_out.data,
                &self.cache.input,
                &mut ws.dw,
            );
            let spec = self.weight_spec;
            for (i, (slot, (&g, &w0))) in self
                .weight
                .grad
                .iter_mut()
                .zip(ws.dw.iter().zip(&self.weight.value))
                .enumerate()
            {
                *slot += g * quant::ste_mask(w0, self.cache.scales[i / self.in_features], spec);
            }
        });
        // db = column sums of dY
        for row in grad_out.data.chunks(self.out_features) {
            for (slot, &g) in self.bias.grad.iter_mut().zip(row) {
                *slot += g;
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapex_tensor::rng::rng_from_seed;

    #[test]
    fn forward_computes_affine_map() {
        let mut lin = QuantLinear::new(2, 2, QuantSpec::signed(8), &mut rng_from_seed(1));
        lin.weight.value = vec![1.0, 0.0, 0.0, -1.0];
        lin.bias.value = vec![0.5, 0.0];
        let x = Activation::new(vec![2.0, 3.0], 1, vec![2]);
        let y = lin.forward(&x, false);
        // 8-bit quantization of {1, 0, -1} with scale 1/127 is near exact.
        assert!((y.data[0] - 2.5).abs() < 0.05, "{:?}", y.data);
        assert!((y.data[1] + 3.0).abs() < 0.05, "{:?}", y.data);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut lin = QuantLinear::new(3, 2, QuantSpec::signed(8), &mut rng_from_seed(2));
        // Explicit weights instead of RNG draws: the symmetric per-row
        // scale maps `max_abs` onto |q_min| = 128, so a row whose
        // max-magnitude element is *positive* sits just above
        // `q_max * scale` — zero STE mask there while the finite
        // difference still sees a slope through the moving scale. Keep
        // every row maximum negative so all six masks are 1.
        lin.weight.value = vec![0.4, -0.6, 0.2, -0.5, 0.3, 0.1];
        lin.weight.touch();
        let x = Activation::new(vec![0.3, -0.8, 0.5, 1.2, 0.1, -0.4], 2, vec![3]);
        let y = lin.forward(&x, true);
        let ones = Activation::new(vec![1.0; y.data.len()], y.n, y.dims.clone());
        let dx = lin.backward(&ones);

        // Finite differences step across the 8-bit quantization grid, so
        // use an eps spanning many quantization steps and a loose bound.
        let eps = 0.08;
        for wi in 0..6 {
            let orig = lin.weight.value[wi];
            lin.weight.value[wi] = orig + eps;
            lin.weight.touch();
            let lp: f32 = lin.forward(&x, false).data.iter().sum();
            lin.weight.value[wi] = orig - eps;
            lin.weight.touch();
            let lm: f32 = lin.forward(&x, false).data.iter().sum();
            lin.weight.value[wi] = orig;
            lin.weight.touch();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - lin.weight.grad[wi]).abs() < 0.5,
                "dW[{wi}] numeric {numeric} vs {}",
                lin.weight.grad[wi]
            );
        }
        for xi in 0..6 {
            let mut x2 = x.clone();
            x2.data[xi] += eps;
            let lp: f32 = lin.forward(&x2, false).data.iter().sum();
            x2.data[xi] -= 2.0 * eps;
            let lm: f32 = lin.forward(&x2, false).data.iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - dx.data[xi]).abs() < 0.3,
                "dX[{xi}] numeric {numeric} vs {}",
                dx.data[xi]
            );
        }
    }

    #[test]
    fn bias_gradient_counts_batch() {
        let mut lin = QuantLinear::new(1, 1, QuantSpec::signed(8), &mut rng_from_seed(3));
        let x = Activation::new(vec![1.0, 1.0, 1.0], 3, vec![1]);
        lin.forward(&x, true);
        let g = Activation::new(vec![1.0, 1.0, 1.0], 3, vec![1]);
        lin.backward(&g);
        assert!((lin.bias.grad[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "linear input features")]
    fn forward_rejects_wrong_width() {
        let mut lin = QuantLinear::new(4, 2, QuantSpec::signed(2), &mut rng_from_seed(4));
        let x = Activation::zeros(1, &[3]);
        lin.forward(&x, false);
    }
}
