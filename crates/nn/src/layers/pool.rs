use super::{Activation, LayerInfo};
use adapex_tensor::conv::ConvGeometry;
use serde::{Deserialize, Serialize};

/// Max pooling with stride equal to the window (the only flavour CNV and
/// the paper's exit branches use; the exit's `k = ⌊DIM/2⌋` pool is an
/// instance of this).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    /// Window size and stride.
    pub kernel: usize,
    /// Backward-pass cache; the argmax buffer persists across batches and
    /// is only recorded in training mode.
    #[serde(skip)]
    cache: PoolCache,
    #[serde(skip)]
    cache_valid: bool,
}

impl PartialEq for MaxPool2d {
    fn eq(&self, other: &Self) -> bool {
        // Caches are derived state; equality is structural.
        self.kernel == other.kernel
    }
}

#[derive(Debug, Clone, Default)]
struct PoolCache {
    argmax: Vec<usize>,
    in_dims: Vec<usize>,
    n: usize,
}

impl MaxPool2d {
    /// New pooling layer with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "pool kernel must be positive");
        MaxPool2d {
            kernel,
            cache: PoolCache::default(),
            cache_valid: false,
        }
    }

    /// Per-sample output shape.
    ///
    /// # Panics
    ///
    /// Panics unless `in_dims` is CHW with extents >= kernel.
    pub fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(in_dims);
        vec![in_dims[0], oh, ow]
    }

    /// Output spatial extent, shared by [`Self::out_dims`] and the
    /// allocation-free forward path.
    fn out_hw(&self, in_dims: &[usize]) -> (usize, usize) {
        assert_eq!(in_dims.len(), 3, "pool input must be CHW");
        let g = ConvGeometry::new(self.kernel).with_stride(self.kernel);
        let oh = g.output_dim(in_dims[1]).expect("pool window must fit");
        let ow = g.output_dim(in_dims[2]).expect("pool window must fit");
        (oh, ow)
    }

    /// Structural description.
    ///
    /// # Panics
    ///
    /// Panics unless `in_dims` is a valid CHW shape.
    pub fn info(&self, in_dims: &[usize]) -> LayerInfo {
        let out = self.out_dims(in_dims);
        LayerInfo::MaxPool {
            kernel: self.kernel,
            channels: in_dims[0],
            in_hw: (in_dims[1], in_dims[2]),
            out_hw: (out[1], out[2]),
        }
    }

    /// Forward pass, recording argmax positions when `train` is set.
    ///
    /// # Panics
    ///
    /// Panics on an input shape mismatch.
    pub fn forward(&mut self, x: &Activation, train: bool) -> Activation {
        let (oh, ow) = self.out_hw(&x.dims);
        let out_dims = [x.dims[0], oh, ow];
        let (c, h, w) = (x.dims[0], x.dims[1], x.dims[2]);
        let k = self.kernel;
        let mut out = Activation::zeros(x.n, &out_dims);
        // A max over grid values stays on the grid.
        out.quant = x.quant;
        let sample_in = x.sample_len();
        let argmax = &mut self.cache.argmax;
        if train {
            argmax.clear();
            argmax.resize(out.data.len(), 0);
        }
        for i in 0..x.n {
            let img = x.sample(i);
            let base_out = i * c * oh * ow;
            for ch in 0..c {
                let plane = &img[ch * h * w..(ch + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..k {
                            for kx in 0..k {
                                let y = oy * k + ky;
                                let xx = ox * k + kx;
                                let v = plane[y * w + xx];
                                if v > best {
                                    best = v;
                                    best_idx = i * sample_in + ch * h * w + y * w + xx;
                                }
                            }
                        }
                        let o = base_out + (ch * oh + oy) * ow + ox;
                        out.data[o] = best;
                        if train {
                            argmax[o] = best_idx;
                        }
                    }
                }
            }
        }
        if train {
            self.cache.in_dims.clear();
            self.cache.in_dims.extend_from_slice(&x.dims);
            self.cache.n = x.n;
            self.cache_valid = true;
        } else {
            self.cache_valid = false;
        }
        out
    }

    /// Backward pass: routes each output gradient to its argmax input.
    ///
    /// # Panics
    ///
    /// Panics if no training-mode forward preceded this call.
    pub fn backward(&mut self, grad_out: &Activation) -> Activation {
        assert!(self.cache_valid, "pool backward requires cached forward");
        self.cache_valid = false;
        let mut grad_in = Activation::zeros(self.cache.n, &self.cache.in_dims);
        for (o, &src) in self.cache.argmax.iter().enumerate() {
            grad_in.data[src] += grad_out.data[o];
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_takes_maxima() {
        let mut pool = MaxPool2d::new(2);
        let x = Activation::new(
            vec![1.0, 2.0, 3.0, 4.0, -1.0, -2.0, -3.0, -4.0],
            1,
            vec![2, 2, 2],
        );
        let y = pool.forward(&x, false);
        assert_eq!(y.dims, vec![2, 1, 1]);
        assert_eq!(y.data, vec![4.0, -1.0]);
    }

    #[test]
    fn odd_dims_truncate_like_floor_division() {
        let pool = MaxPool2d::new(2);
        assert_eq!(pool.out_dims(&[3, 5, 5]), vec![3, 2, 2]);
        // The exit branch's aggressive pool: k = floor(8/2) = 4 on an 8x8 map.
        let pool = MaxPool2d::new(4);
        assert_eq!(pool.out_dims(&[64, 8, 8]), vec![64, 2, 2]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Activation::new(vec![1.0, 5.0, 2.0, 3.0], 1, vec![1, 2, 2]);
        pool.forward(&x, true);
        let g = Activation::new(vec![7.0], 1, vec![1, 1, 1]);
        let dx = pool.backward(&g);
        assert_eq!(dx.data, vec![0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn gradient_mass_is_preserved() {
        let mut pool = MaxPool2d::new(2);
        let x = Activation::new((0..32).map(|v| (v as f32).sin()).collect(), 2, vec![1, 4, 4]);
        let y = pool.forward(&x, true);
        let g = Activation::new(vec![1.0; y.data.len()], y.n, y.dims.clone());
        let dx = pool.backward(&g);
        assert!((dx.data.iter().sum::<f32>() - y.data.len() as f32).abs() < 1e-6);
    }
}
