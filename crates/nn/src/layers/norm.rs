use super::{Activation, Param};
use adapex_tensor::simd;
use adapex_tensor::workspace::with_workspace;
use serde::{Deserialize, Serialize};

/// Batch normalization over channels.
///
/// Handles both 4-D `[C, H, W]` activations (per-channel statistics over
/// batch and spatial positions) and flat `[F]` activations (per-feature).
/// On the FPGA, FINN folds BatchNorm into the MVTU's threshold memory, so
/// this layer exists only in the training graph; the compiler reports it
/// as threshold configuration, not as a module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm {
    /// Number of channels (4-D input) or features (flat input).
    pub channels: usize,
    /// Learned scale.
    pub gamma: Param,
    /// Learned shift.
    pub beta: Param,
    /// Running mean used at eval time.
    pub running_mean: Vec<f32>,
    /// Running variance used at eval time.
    pub running_var: Vec<f32>,
    /// Exponential-average momentum for the running statistics.
    pub momentum: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Backward-pass cache; buffers persist across batches.
    #[serde(skip)]
    cache: NormCache,
    #[serde(skip)]
    cache_valid: bool,
}

impl PartialEq for BatchNorm {
    fn eq(&self, other: &Self) -> bool {
        // Caches are derived state; equality is structural.
        self.channels == other.channels
            && self.gamma == other.gamma
            && self.beta == other.beta
            && self.running_mean == other.running_mean
            && self.running_var == other.running_var
            && self.momentum == other.momentum
            && self.eps == other.eps
    }
}

#[derive(Debug, Clone, Default)]
struct NormCache {
    xhat: Vec<f32>,
    inv_std: Vec<f32>,
    n: usize,
    dims: Vec<usize>,
}

impl BatchNorm {
    /// New layer with identity initialisation (`gamma = 1`, `beta = 0`).
    pub fn new(channels: usize) -> Self {
        BatchNorm {
            channels,
            gamma: Param::new(vec![1.0; channels]),
            beta: Param::new(vec![0.0; channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: NormCache::default(),
            cache_valid: false,
        }
    }

    fn spatial(&self, dims: &[usize]) -> usize {
        match dims.len() {
            3 => dims[1] * dims[2],
            1 => 1,
            _ => panic!("batchnorm supports CHW or flat inputs, got {dims:?}"),
        }
    }

    /// Forward pass: batch statistics in training, running statistics at
    /// eval.
    ///
    /// # Panics
    ///
    /// Panics when the channel count disagrees with `self.channels`.
    pub fn forward(&mut self, x: &Activation, train: bool) -> Activation {
        let spatial = self.spatial(&x.dims);
        assert_eq!(x.dims[0], self.channels, "batchnorm channels");
        let count = (x.n * spatial) as f32;
        let mut out = Activation::zeros(x.n, &x.dims);
        let sample_len = x.sample_len();

        if !train {
            // Eval normalizes against the running statistics directly; no
            // xhat buffer is materialized since no backward will run.
            self.cache_valid = false;
            for i in 0..x.n {
                let s = &x.data[i * sample_len..(i + 1) * sample_len];
                let o = &mut out.data[i * sample_len..(i + 1) * sample_len];
                for c in 0..self.channels {
                    let mean = self.running_mean[c];
                    let inv_std = 1.0 / (self.running_var[c] + self.eps).sqrt();
                    let g = self.gamma.value[c];
                    let b = self.beta.value[c];
                    let ch = c * spatial..(c + 1) * spatial;
                    simd::normalize_affine(&mut o[ch.clone()], &s[ch], mean, inv_std, g, b);
                }
            }
            return out;
        }

        with_workspace(|ws| {
            let mean = &mut ws.scratch;
            mean.clear();
            mean.resize(self.channels, 0.0);
            let var = &mut ws.scratch2;
            var.clear();
            var.resize(self.channels, 0.0);
            for i in 0..x.n {
                let s = &x.data[i * sample_len..(i + 1) * sample_len];
                for c in 0..self.channels {
                    mean[c] += s[c * spatial..(c + 1) * spatial].iter().sum::<f32>();
                }
            }
            for m in mean.iter_mut() {
                *m /= count;
            }
            for i in 0..x.n {
                let s = &x.data[i * sample_len..(i + 1) * sample_len];
                for c in 0..self.channels {
                    var[c] += s[c * spatial..(c + 1) * spatial]
                        .iter()
                        .map(|&v| (v - mean[c]) * (v - mean[c]))
                        .sum::<f32>();
                }
            }
            for v in var.iter_mut() {
                *v /= count;
            }
            for c in 0..self.channels {
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
            }

            self.cache.inv_std.clear();
            self.cache
                .inv_std
                .extend(var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()));
            self.cache.xhat.clear();
            self.cache.xhat.resize(x.data.len(), 0.0);
            for i in 0..x.n {
                let s = &x.data[i * sample_len..(i + 1) * sample_len];
                let o = &mut out.data[i * sample_len..(i + 1) * sample_len];
                let xh = &mut self.cache.xhat[i * sample_len..(i + 1) * sample_len];
                for (c, (o_ch, xh_ch)) in o
                    .chunks_exact_mut(spatial)
                    .zip(xh.chunks_exact_mut(spatial))
                    .enumerate()
                {
                    let g = self.gamma.value[c];
                    let b = self.beta.value[c];
                    let (m, istd) = (mean[c], self.cache.inv_std[c]);
                    let s_ch = &s[c * spatial..(c + 1) * spatial];
                    simd::normalize_affine_xhat(o_ch, xh_ch, s_ch, m, istd, g, b);
                }
            }
        });
        self.cache.n = x.n;
        self.cache.dims.clear();
        self.cache.dims.extend_from_slice(&x.dims);
        self.cache_valid = true;
        out
    }

    /// Backward pass; returns the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if no training-mode forward preceded this call.
    pub fn backward(&mut self, grad_out: &Activation) -> Activation {
        assert!(self.cache_valid, "batchnorm backward requires cached forward");
        self.cache_valid = false;
        let spatial = self.spatial(&self.cache.dims);
        let count = (self.cache.n * spatial) as f32;
        let sample_len: usize = self.cache.dims.iter().product();
        let mut grad_in = Activation::zeros(self.cache.n, &self.cache.dims);

        with_workspace(|ws| {
            // Per-channel reductions: sum(dY) and sum(dY * xhat).
            let sum_dy = &mut ws.scratch;
            sum_dy.clear();
            sum_dy.resize(self.channels, 0.0);
            let sum_dy_xhat = &mut ws.scratch2;
            sum_dy_xhat.clear();
            sum_dy_xhat.resize(self.channels, 0.0);
            for i in 0..self.cache.n {
                let dy = &grad_out.data[i * sample_len..(i + 1) * sample_len];
                let xh = &self.cache.xhat[i * sample_len..(i + 1) * sample_len];
                for c in 0..self.channels {
                    for j in c * spatial..(c + 1) * spatial {
                        sum_dy[c] += dy[j];
                        sum_dy_xhat[c] += dy[j] * xh[j];
                    }
                }
            }
            for c in 0..self.channels {
                self.gamma.grad[c] += sum_dy_xhat[c];
                self.beta.grad[c] += sum_dy[c];
            }
            // dX = gamma * inv_std / N * (N*dY − sum(dY) − xhat*sum(dY*xhat))
            for i in 0..self.cache.n {
                let dy = &grad_out.data[i * sample_len..(i + 1) * sample_len];
                let xh = &self.cache.xhat[i * sample_len..(i + 1) * sample_len];
                let dx = &mut grad_in.data[i * sample_len..(i + 1) * sample_len];
                for c in 0..self.channels {
                    let coeff = self.gamma.value[c] * self.cache.inv_std[c] / count;
                    let ch = c * spatial..(c + 1) * spatial;
                    simd::bn_backward_dx(
                        &mut dx[ch.clone()],
                        &dy[ch.clone()],
                        &xh[ch],
                        coeff,
                        count,
                        sum_dy[c],
                        sum_dy_xhat[c],
                    );
                }
            }
        });
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_forward_normalizes() {
        let mut bn = BatchNorm::new(1);
        let x = Activation::new(vec![1.0, 2.0, 3.0, 4.0], 1, vec![1, 2, 2]);
        let y = bn.forward(&x, true);
        let mean: f32 = y.data.iter().sum::<f32>() / 4.0;
        let var: f32 = y.data.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        bn.running_mean = vec![10.0];
        bn.running_var = vec![4.0];
        let x = Activation::new(vec![12.0], 1, vec![1]);
        let y = bn.forward(&x, false);
        assert!((y.data[0] - 1.0).abs() < 1e-3, "{:?}", y.data);
    }

    #[test]
    fn running_stats_track_batches() {
        let mut bn = BatchNorm::new(1);
        let x = Activation::new(vec![4.0, 4.0, 4.0, 4.0], 4, vec![1]);
        for _ in 0..50 {
            bn.forward(&x, true);
        }
        assert!((bn.running_mean[0] - 4.0).abs() < 0.1);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut bn = BatchNorm::new(2);
        let x = Activation::new(
            vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.5, 0.1, -0.2],
            2,
            vec![2, 1, 2],
        );
        // Loss = weighted sum so per-element gradients differ.
        let w: Vec<f32> = (0..8).map(|v| (v as f32 + 1.0) * 0.1).collect();
        let y = bn.forward(&x, true);
        let g = Activation::new(w.clone(), 2, y.dims.clone());
        let dx = bn.backward(&g);
        let loss = |bn: &mut BatchNorm, x: &Activation| -> f32 {
            bn.forward(x, true).data.iter().zip(&w).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-3;
        for xi in 0..8 {
            let mut x2 = x.clone();
            x2.data[xi] += eps;
            let lp = loss(&mut bn, &x2);
            x2.data[xi] -= 2.0 * eps;
            let lm = loss(&mut bn, &x2);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - dx.data[xi]).abs() < 0.05,
                "dX[{xi}] numeric {numeric} vs {}",
                dx.data[xi]
            );
        }
    }

    #[test]
    #[should_panic(expected = "batchnorm channels")]
    fn rejects_channel_mismatch() {
        let mut bn = BatchNorm::new(3);
        let x = Activation::zeros(1, &[2, 2, 2]);
        bn.forward(&x, true);
    }
}
