//! Fake quantization with straight-through estimators (STE).
//!
//! AdaPEx evaluates CNVW2A2 — 2-bit weights, 2-bit activations — trained
//! quantization-aware in Brevitas. This module reproduces the mechanism:
//! forward passes see quantized values, backward passes treat the
//! quantizer as (clipped) identity, so full-precision shadow weights keep
//! accumulating gradients.

use adapex_tensor::simd;
use serde::{Deserialize, Serialize};

/// Bit width and signedness of a quantizer.
///
/// ```
/// use adapex_nn::quant::QuantSpec;
///
/// let w2 = QuantSpec::signed(2);
/// assert_eq!(w2.levels(), 4);
/// assert_eq!(w2.q_min(), -2);
/// assert_eq!(w2.q_max(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantSpec {
    /// Bit width (1..=8 supported; the paper uses 2).
    pub bits: u32,
    /// Signed (weights) or unsigned (post-ReLU activations).
    pub signed: bool,
}

impl QuantSpec {
    /// Signed quantizer of `bits` bits (weights).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8`.
    pub fn signed(bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "supported bit widths are 1..=8");
        QuantSpec { bits, signed: true }
    }

    /// Unsigned quantizer of `bits` bits (activations).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8`.
    pub fn unsigned(bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "supported bit widths are 1..=8");
        QuantSpec {
            bits,
            signed: false,
        }
    }

    /// Number of representable levels, `2^bits`.
    pub fn levels(self) -> i32 {
        1 << self.bits
    }

    /// Smallest integer code (e.g. −2 for signed 2-bit, 0 for unsigned).
    pub fn q_min(self) -> i32 {
        if self.signed {
            -(1 << (self.bits - 1))
        } else {
            0
        }
    }

    /// Largest integer code (e.g. 1 for signed 2-bit, 3 for unsigned).
    pub fn q_max(self) -> i32 {
        if self.signed {
            (1 << (self.bits - 1)) - 1
        } else {
            (1 << self.bits) - 1
        }
    }

    /// `true` for the signed 2-bit weight quantizer that the bit-packed
    /// integer eval engine ([`adapex_tensor::int2`]) executes; matrix
    /// layers consult this (plus the input's activation-grid stamp) when
    /// routing their eval forward.
    pub fn is_int2_weight(self) -> bool {
        self.signed && self.bits == 2
    }
}

/// Symmetric per-tensor scale so that `max_abs` maps onto the largest
/// magnitude code.
///
/// Returns 1.0 for an all-zero tensor so quantization stays a no-op.
pub fn weight_scale(max_abs: f32, spec: QuantSpec) -> f32 {
    let denom = spec.q_min().unsigned_abs().max(spec.q_max() as u32) as f32;
    if max_abs <= f32::EPSILON || denom == 0.0 {
        1.0
    } else {
        max_abs / denom
    }
}

/// Fake-quantizes one value: `round(x / scale)` clamped to the code range,
/// then rescaled.
pub fn fake_quantize(x: f32, scale: f32, spec: QuantSpec) -> f32 {
    let q = (x / scale).round().clamp(spec.q_min() as f32, spec.q_max() as f32);
    q * scale
}

/// Fake-quantizes a buffer in place with a shared scale.
///
/// Runs on the SIMD-dispatched kernel; every dispatch path produces the
/// same bits as mapping [`fake_quantize`] over the slice.
pub fn fake_quantize_slice(values: &mut [f32], scale: f32, spec: QuantSpec) {
    simd::fake_quant_slice(values, scale, spec.q_min() as f32, spec.q_max() as f32);
}

/// Quantizes full-precision weights into the forward-pass view:
/// returns `(quantized, scale)` where `scale` derives from the tensor's
/// max-abs (symmetric per-tensor quantization).
pub fn quantize_weights(weights: &[f32], spec: QuantSpec) -> (Vec<f32>, f32) {
    let max_abs = simd::fold_max_abs(0.0, weights);
    let scale = weight_scale(max_abs, spec);
    let q = weights
        .iter()
        .map(|&w| fake_quantize(w, scale, spec))
        .collect();
    (q, scale)
}

/// Per-output-channel symmetric quantization (Brevitas' default for CNV):
/// `weights` is `[rows, row_len]` flattened and every row gets its own
/// max-abs-derived scale, so one outlier filter cannot destroy the
/// resolution of the others.
///
/// Returns the quantized weights and one scale per row.
///
/// # Panics
///
/// Panics if `weights.len()` is not a multiple of `row_len`.
pub fn quantize_weights_per_row(
    weights: &[f32],
    row_len: usize,
    spec: QuantSpec,
) -> (Vec<f32>, Vec<f32>) {
    let mut q = Vec::new();
    let mut scales = Vec::new();
    quantize_weights_per_row_into(weights, row_len, spec, &mut q, &mut scales);
    (q, scales)
}

/// [`quantize_weights_per_row`] into caller-provided buffers so a cached
/// `(q, scales)` pair can be refreshed without reallocating. Both buffers
/// are cleared and refilled; prior contents are irrelevant.
///
/// # Panics
///
/// Panics if `weights.len()` is not a multiple of `row_len`.
pub fn quantize_weights_per_row_into(
    weights: &[f32],
    row_len: usize,
    spec: QuantSpec,
    q: &mut Vec<f32>,
    scales: &mut Vec<f32>,
) {
    assert!(row_len > 0, "row length must be positive");
    assert_eq!(weights.len() % row_len, 0, "weights must be whole rows");
    let rows = weights.len() / row_len;
    q.clear();
    q.resize(weights.len(), 0.0);
    scales.clear();
    scales.reserve(rows);
    for r in 0..rows {
        let row = &weights[r * row_len..(r + 1) * row_len];
        let max_abs = simd::fold_max_abs(0.0, row);
        let scale = weight_scale(max_abs, spec);
        let slot = &mut q[r * row_len..(r + 1) * row_len];
        slot.copy_from_slice(row);
        simd::fake_quant_slice(slot, scale, spec.q_min() as f32, spec.q_max() as f32);
        scales.push(scale);
    }
}

/// STE gradient mask for a clipped quantizer: 1 inside the representable
/// range, 0 outside (gradients must not keep pushing saturated weights).
pub fn ste_mask(x: f32, scale: f32, spec: QuantSpec) -> f32 {
    let lo = spec.q_min() as f32 * scale;
    let hi = spec.q_max() as f32 * scale;
    if x >= lo && x <= hi {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_ranges() {
        let w2 = QuantSpec::signed(2);
        assert_eq!((w2.q_min(), w2.q_max(), w2.levels()), (-2, 1, 4));
        let a2 = QuantSpec::unsigned(2);
        assert_eq!((a2.q_min(), a2.q_max(), a2.levels()), (0, 3, 4));
        let b1 = QuantSpec::signed(1);
        assert_eq!((b1.q_min(), b1.q_max()), (-1, 0));
    }

    #[test]
    #[should_panic(expected = "supported bit widths")]
    fn spec_rejects_zero_bits() {
        QuantSpec::signed(0);
    }

    #[test]
    fn quantized_values_live_on_grid() {
        let spec = QuantSpec::signed(2);
        let w: Vec<f32> = vec![-0.9, -0.4, -0.1, 0.0, 0.2, 0.45];
        let (q, scale) = quantize_weights(&w, spec);
        for v in &q {
            let code = v / scale;
            assert!((code - code.round()).abs() < 1e-5, "{v} not on grid");
            assert!((-2.0..=1.0).contains(&code));
        }
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step() {
        let spec = QuantSpec::signed(2);
        let w: Vec<f32> = (-10..=10).map(|v| v as f32 / 10.0).collect();
        let (q, scale) = quantize_weights(&w, spec);
        for (orig, quant) in w.iter().zip(&q) {
            // Inside the representable range, error <= scale/2.
            if *orig <= spec.q_max() as f32 * scale && *orig >= spec.q_min() as f32 * scale {
                assert!((orig - quant).abs() <= scale / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn zero_tensor_is_fixed_point() {
        let (q, scale) = quantize_weights(&[0.0; 8], QuantSpec::signed(2));
        assert_eq!(scale, 1.0);
        assert!(q.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ste_mask_zeroes_saturated_region() {
        let spec = QuantSpec::signed(2);
        let scale = 0.5; // range [-1.0, 0.5]
        assert_eq!(ste_mask(0.0, scale, spec), 1.0);
        assert_eq!(ste_mask(-1.0, scale, spec), 1.0);
        assert_eq!(ste_mask(0.6, scale, spec), 0.0);
        assert_eq!(ste_mask(-1.2, scale, spec), 0.0);
    }

    #[test]
    fn unsigned_quant_clamps_negatives_to_zero() {
        let spec = QuantSpec::unsigned(2);
        assert_eq!(fake_quantize(-3.0, 0.25, spec), 0.0);
        assert_eq!(fake_quantize(10.0, 0.25, spec), 0.75);
    }
}
