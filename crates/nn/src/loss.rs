//! Softmax, cross-entropy and the joint early-exit loss.
//!
//! The paper trains all exits simultaneously with the BranchyNet joint
//! loss `J = Σ_n w_n · L(softmax(exit_n), y)` (Sec. IV-A1) and uses the
//! softmax maximum as each exit's **confidence** measure (Sec. II).

use crate::layers::Activation;
use adapex_tensor::simd;
use adapex_tensor::workspace::with_workspace;

/// Numerically-stable softmax of one logit vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; logits.len()];
    softmax_into(logits, &mut out);
    out
}

/// [`softmax`] into a caller-provided slice of the same length, so hot
/// loops can reuse one probability buffer.
///
/// # Panics
///
/// Panics if `out.len() != logits.len()`.
pub fn softmax_into(logits: &[f32], out: &mut [f32]) {
    assert_eq!(out.len(), logits.len(), "softmax output length");
    let max = simd::fold_max(f32::NEG_INFINITY, logits);
    // exp and the running sum stay scalar: the sum is an ordered
    // reduction, and vectorizing it would change the rounding.
    let mut sum = 0.0f32;
    for (o, &v) in out.iter_mut().zip(logits) {
        let e = (v - max).exp();
        *o = e;
        sum += e;
    }
    simd::div_scalar(out, sum);
}

/// Softmax applied row-wise to a batch of logits.
///
/// # Panics
///
/// Panics if the activation is not flat (`dims.len() != 1`).
pub fn softmax_batch(logits: &Activation) -> Activation {
    assert_eq!(logits.dims.len(), 1, "softmax expects flat logits");
    let classes = logits.dims[0];
    let mut out = Activation::zeros(logits.n, &logits.dims);
    for i in 0..logits.n {
        softmax_into(
            logits.sample(i),
            &mut out.data[i * classes..(i + 1) * classes],
        );
    }
    out
}

/// Confidence of a softmax distribution: its maximum probability.
///
/// The paper accepts an exit whenever this value clears the confidence
/// threshold.
pub fn confidence(probs: &[f32]) -> f32 {
    simd::fold_max(0.0, probs)
}

/// Mean cross-entropy of a batch of logits against integer labels, plus
/// the gradient w.r.t. the logits scaled by `weight` (the exit's `w_n`).
///
/// # Panics
///
/// Panics if `labels.len() != logits.n` or any label is out of range.
pub fn cross_entropy_with_grad(
    logits: &Activation,
    labels: &[usize],
    weight: f32,
) -> (f32, Activation) {
    assert_eq!(labels.len(), logits.n, "one label per sample");
    let classes = logits.dims[0];
    let mut grad = Activation::zeros(logits.n, &logits.dims);
    let mut loss = 0.0f32;
    let inv_n = 1.0 / logits.n.max(1) as f32;
    with_workspace(|ws| {
        let p = &mut ws.scratch;
        p.clear();
        p.resize(classes, 0.0);
        for (i, &label) in labels.iter().enumerate() {
            assert!(label < classes, "label {label} out of range {classes}");
            softmax_into(logits.sample(i), p);
            loss -= (p[label].max(1e-12)).ln();
            let g = &mut grad.data[i * classes..(i + 1) * classes];
            for (c, (slot, &pc)) in g.iter_mut().zip(p.iter()).enumerate() {
                let target = if c == label { 1.0 } else { 0.0 };
                *slot = weight * (pc - target) * inv_n;
            }
        }
    });
    (loss * inv_n, grad)
}

/// Top-1 accuracy of a batch of logits.
///
/// # Panics
///
/// Panics if `labels.len() != logits.n`.
pub fn accuracy(logits: &Activation, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), logits.n, "one label per sample");
    if logits.n == 0 {
        return 0.0;
    }
    let classes = logits.dims[0];
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = logits.sample(i);
        let mut best = 0;
        for c in 1..classes {
            if row[c] > row[best] {
                best = c;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    correct as f64 / logits.n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 3.0, 2.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[1] > p[2] && p[2] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn confidence_is_max_prob() {
        assert_eq!(confidence(&[0.1, 0.7, 0.2]), 0.7);
    }

    #[test]
    fn cross_entropy_at_uniform_is_log_classes() {
        let logits = Activation::zeros(2, &[4]);
        let (loss, _) = cross_entropy_with_grad(&logits, &[0, 3], 1.0);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_points_towards_target() {
        let logits = Activation::zeros(1, &[3]);
        let (_, grad) = cross_entropy_with_grad(&logits, &[1], 1.0);
        // Gradient is (p - onehot): target entry negative, others positive.
        assert!(grad.data[1] < 0.0);
        assert!(grad.data[0] > 0.0 && grad.data[2] > 0.0);
        assert!((grad.data.iter().sum::<f32>()).abs() < 1e-6);
    }

    #[test]
    fn exit_weight_scales_gradient() {
        let logits = Activation::new(vec![0.5, -0.5], 1, vec![2]);
        let (_, g1) = cross_entropy_with_grad(&logits, &[0], 1.0);
        let (_, g03) = cross_entropy_with_grad(&logits, &[0], 0.3);
        for (a, b) in g1.data.iter().zip(&g03.data) {
            assert!((b - 0.3 * a).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Activation::new(vec![0.2, -1.0, 0.7], 1, vec![3]);
        let (_, grad) = cross_entropy_with_grad(&logits, &[2], 1.0);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data[i] += eps;
            let (loss_p, _) = cross_entropy_with_grad(&lp, &[2], 1.0);
            lp.data[i] -= 2.0 * eps;
            let (loss_m, _) = cross_entropy_with_grad(&lp, &[2], 1.0);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!((numeric - grad.data[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Activation::new(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], 3, vec![2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
    }
}
