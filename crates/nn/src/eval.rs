//! Early-exit evaluation under confidence thresholds.
//!
//! The expensive part — running every test sample through every exit — is
//! done once into an [`ExitEvaluation`]; sweeping the confidence
//! threshold (the paper sweeps 0–100 % in 5 % steps) is then a cheap
//! post-processing step via [`ExitEvaluation::at_threshold`]. This is how
//! the library generator characterizes one pruned model at every
//! threshold without re-running inference.
//!
//! Eval forwards here run `train = false`, so every 2-bit matrix layer
//! whose input carries a 2-bit quantization grid dispatches to the
//! bit-packed popcount engine (`adapex_tensor::int2`, DESIGN.md §11).
//! `ADAPEX_NO_INT2=1` routes those layers to a bit-identical
//! f32-over-codes fallback instead; evaluations agree exactly either way
//! (pinned by `tests/int2_agreement.rs`).

use crate::layers::Activation;
use crate::loss::{confidence, softmax_into};
use crate::network::EarlyExitNetwork;
use adapex_dataset::LabeledImages;
use adapex_tensor::parallel::{num_threads, par_map_init};
use adapex_tensor::workspace::with_workspace;
use serde::{Deserialize, Serialize};

/// Default batch size used when sweeping a dataset through the network.
pub const EVAL_BATCH: usize = 64;

/// Knobs for [`evaluate_exits_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Samples per forward batch (default [`EVAL_BATCH`]).
    pub batch: usize,
    /// Worker threads; `0` resolves to
    /// [`num_threads`](adapex_tensor::parallel::num_threads).
    pub jobs: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            batch: EVAL_BATCH,
            jobs: 0,
        }
    }
}

/// Per-sample, per-exit predictions of one network on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExitEvaluation {
    /// `correct[exit][sample]`: whether that exit's argmax was right.
    pub correct: Vec<Vec<bool>>,
    /// `confidence[exit][sample]`: that exit's softmax maximum.
    pub confidence: Vec<Vec<f32>>,
    /// Number of samples evaluated.
    pub samples: usize,
}

/// Aggregate behaviour at one confidence threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdReport {
    /// The threshold applied (0.0–1.0).
    pub threshold: f32,
    /// Overall top-1 accuracy with early exiting.
    pub accuracy: f64,
    /// Fraction of samples classified at each exit (sums to 1).
    pub exit_fractions: Vec<f64>,
    /// Accuracy of the samples taken at each exit (`None` if no sample
    /// exited there).
    pub per_exit_accuracy: Vec<Option<f64>>,
}

impl ExitEvaluation {
    /// Number of exits covered.
    pub fn num_exits(&self) -> usize {
        self.correct.len()
    }

    /// Standalone top-1 accuracy of one exit over all samples (as if that
    /// exit classified everything).
    ///
    /// # Panics
    ///
    /// Panics if `exit` is out of range.
    pub fn exit_accuracy(&self, exit: usize) -> f64 {
        let c = &self.correct[exit];
        if c.is_empty() {
            return 0.0;
        }
        c.iter().filter(|&&b| b).count() as f64 / c.len() as f64
    }

    /// Mean standalone accuracy over all exits — the "accuracy averaged
    /// on all exits" the paper's runtime manager ranks models by.
    pub fn mean_exit_accuracy(&self) -> f64 {
        if self.correct.is_empty() {
            return 0.0;
        }
        (0..self.num_exits()).map(|e| self.exit_accuracy(e)).sum::<f64>()
            / self.num_exits() as f64
    }

    /// Simulates early-exit inference at `threshold`: each sample takes
    /// the first exit whose confidence clears the threshold, falling back
    /// to the final exit.
    pub fn at_threshold(&self, threshold: f32) -> ThresholdReport {
        let exits = self.num_exits();
        let mut taken = vec![0usize; exits];
        let mut taken_correct = vec![0usize; exits];
        for s in 0..self.samples {
            let mut chosen = exits - 1;
            for e in 0..exits - 1 {
                if self.confidence[e][s] >= threshold {
                    chosen = e;
                    break;
                }
            }
            taken[chosen] += 1;
            if self.correct[chosen][s] {
                taken_correct[chosen] += 1;
            }
        }
        let total = self.samples.max(1) as f64;
        ThresholdReport {
            threshold,
            accuracy: taken_correct.iter().sum::<usize>() as f64 / total,
            exit_fractions: taken.iter().map(|&t| t as f64 / total).collect(),
            per_exit_accuracy: taken
                .iter()
                .zip(&taken_correct)
                .map(|(&t, &c)| {
                    if t == 0 {
                        None
                    } else {
                        Some(c as f64 / t as f64)
                    }
                })
                .collect(),
        }
    }

    /// [`ExitEvaluation::at_threshold`] reduced to the minimal
    /// [`EarlyExitSummary`] — reuse this (and [`final_accuracy`]) when
    /// you already hold an evaluation instead of re-running inference.
    ///
    /// [`final_accuracy`]: ExitEvaluation::final_accuracy
    pub fn summary_at(&self, threshold: f32) -> EarlyExitSummary {
        let report = self.at_threshold(threshold);
        EarlyExitSummary {
            overall_accuracy: report.accuracy,
            exit_fractions: report.exit_fractions,
        }
    }

    /// Standalone top-1 accuracy of the final (backbone) exit.
    ///
    /// # Panics
    ///
    /// Panics if the evaluation covers zero exits.
    pub fn final_accuracy(&self) -> f64 {
        self.exit_accuracy(self.num_exits() - 1)
    }
}

/// Runs `images` through every exit of `net` once, with default
/// [`EvalConfig`] (batch [`EVAL_BATCH`], auto worker count).
pub fn evaluate_exits(net: &mut EarlyExitNetwork, images: &LabeledImages) -> ExitEvaluation {
    evaluate_exits_with(net, images, EvalConfig::default())
}

/// [`evaluate_exits`] with explicit batch size and worker count.
///
/// Batches are fixed by `cfg.batch` alone and processed via the
/// order-preserving [`par_map_init`], each worker forwarding through its
/// own clone of `net` (eval-mode forward reads running statistics and
/// never mutates parameters, so clones agree bit-for-bit with the shared
/// network). Per-sample results are concatenated in batch order, so the
/// output is identical for every `cfg.jobs` value.
pub fn evaluate_exits_with(
    net: &mut EarlyExitNetwork,
    images: &LabeledImages,
    cfg: EvalConfig,
) -> ExitEvaluation {
    let exits = net.num_exits();
    let batches: Vec<Vec<usize>> = images.batches(cfg.batch.max(1), None).collect();
    let jobs = if cfg.jobs == 0 { num_threads() } else { cfg.jobs };
    let per_batch: Vec<BatchScores> = if jobs <= 1 || batches.len() <= 1 {
        batches
            .iter()
            .map(|batch| eval_batch(net, images, batch, exits))
            .collect()
    } else {
        let shared = &*net;
        par_map_init(
            batches.len(),
            jobs,
            || shared.clone(),
            |local, i| eval_batch(local, images, &batches[i], exits),
        )
    };
    let mut correct = vec![Vec::with_capacity(images.len()); exits];
    let mut conf = vec![Vec::with_capacity(images.len()); exits];
    for (batch_correct, batch_conf) in per_batch {
        for e in 0..exits {
            correct[e].extend_from_slice(&batch_correct[e]);
            conf[e].extend_from_slice(&batch_conf[e]);
        }
    }
    ExitEvaluation {
        correct,
        confidence: conf,
        samples: images.len(),
    }
}

/// Per-exit `(correct, confidence)` columns for one mini-batch.
type BatchScores = (Vec<Vec<bool>>, Vec<Vec<f32>>);

/// Forwards one mini-batch and scores every exit's argmax/confidence.
fn eval_batch(
    net: &mut EarlyExitNetwork,
    images: &LabeledImages,
    batch: &[usize],
    exits: usize,
) -> BatchScores {
    let (c, h, w) = images.dims();
    let (pixels, labels) = images.gather(batch);
    let x = Activation::new(pixels, batch.len(), vec![c, h, w]);
    let outputs = net.forward(&x, false);
    let mut correct = vec![Vec::with_capacity(batch.len()); exits];
    let mut conf = vec![Vec::with_capacity(batch.len()); exits];
    with_workspace(|ws| {
        let probs = &mut ws.scratch;
        for (e, out) in outputs.iter().enumerate() {
            probs.clear();
            probs.resize(out.sample_len(), 0.0);
            for (i, &label) in labels.iter().enumerate() {
                softmax_into(out.sample(i), probs);
                let mut best = 0;
                for k in 1..probs.len() {
                    if probs[k] > probs[best] {
                        best = k;
                    }
                }
                correct[e].push(best == label);
                conf[e].push(confidence(probs));
            }
        }
    });
    (correct, conf)
}

/// Convenience: early-exit accuracy and exit fractions at one threshold.
///
/// Runs one full inference pass. To inspect several thresholds (or also
/// the final-exit accuracy) of the same network, call [`evaluate_exits`]
/// once and use [`ExitEvaluation::summary_at`] /
/// [`ExitEvaluation::final_accuracy`] on the result.
pub fn evaluate_early_exit(
    net: &mut EarlyExitNetwork,
    images: &LabeledImages,
    threshold: f32,
) -> EarlyExitSummary {
    evaluate_exits(net, images).summary_at(threshold)
}

/// Convenience: final-exit (backbone) top-1 accuracy.
///
/// Runs one full inference pass; prefer [`ExitEvaluation::final_accuracy`]
/// on an evaluation you already hold.
pub fn evaluate_final(net: &mut EarlyExitNetwork, images: &LabeledImages) -> f64 {
    evaluate_exits(net, images).final_accuracy()
}

/// Minimal early-exit evaluation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EarlyExitSummary {
    /// Top-1 accuracy with early exiting.
    pub overall_accuracy: f64,
    /// Fraction of samples classified at each exit.
    pub exit_fractions: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_eval() -> ExitEvaluation {
        // Two exits, four samples. Early exit confident+right on 0,1;
        // confident+wrong on 2; unsure on 3. Final exit right on 2,3.
        ExitEvaluation {
            correct: vec![
                vec![true, true, false, false],
                vec![false, true, true, true],
            ],
            confidence: vec![
                vec![0.9, 0.8, 0.95, 0.2],
                vec![1.0, 1.0, 1.0, 1.0],
            ],
            samples: 4,
        }
    }

    #[test]
    fn threshold_zero_takes_first_exit_always() {
        let eval = synthetic_eval();
        let r = eval.at_threshold(0.0);
        assert_eq!(r.exit_fractions, vec![1.0, 0.0]);
        assert!((r.accuracy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn threshold_above_one_forces_final_exit() {
        let eval = synthetic_eval();
        let r = eval.at_threshold(1.01);
        assert_eq!(r.exit_fractions, vec![0.0, 1.0]);
        assert!((r.accuracy - 0.75).abs() < 1e-9);
        assert_eq!(r.per_exit_accuracy[0], None);
    }

    #[test]
    fn intermediate_threshold_mixes_exits() {
        let eval = synthetic_eval();
        let r = eval.at_threshold(0.85);
        // Samples 0 and 2 exit early (conf .9, .95), 1 and 3 fall through.
        assert_eq!(r.exit_fractions, vec![0.5, 0.5]);
        // Early: sample0 right, sample2 wrong; final: 1 wrong? no — final
        // correct[1]=true, correct[3]=true -> 3 of 4 right... early exit
        // got sample0 right, sample2 wrong; final got 1 and 3 right.
        assert!((r.accuracy - 0.75).abs() < 1e-9);
    }

    #[test]
    fn lowering_threshold_moves_mass_earlier() {
        let eval = synthetic_eval();
        let hi = eval.at_threshold(0.99);
        let lo = eval.at_threshold(0.1);
        assert!(lo.exit_fractions[0] > hi.exit_fractions[0]);
    }

    #[test]
    fn exit_and_mean_accuracy() {
        let eval = synthetic_eval();
        assert!((eval.exit_accuracy(0) - 0.5).abs() < 1e-9);
        assert!((eval.exit_accuracy(1) - 0.75).abs() < 1e-9);
        assert!((eval.mean_exit_accuracy() - 0.625).abs() < 1e-9);
    }

    #[test]
    fn reusing_forms_match_threshold_report() {
        let eval = synthetic_eval();
        let summary = eval.summary_at(0.85);
        let report = eval.at_threshold(0.85);
        assert_eq!(summary.overall_accuracy, report.accuracy);
        assert_eq!(summary.exit_fractions, report.exit_fractions);
        assert_eq!(eval.final_accuracy(), eval.exit_accuracy(1));
    }

    #[test]
    fn network_evaluation_has_consistent_shape() {
        use crate::cnv::{CnvConfig, ExitsConfig};
        use adapex_dataset::{DatasetKind, SyntheticConfig};
        let data = SyntheticConfig::new(DatasetKind::Cifar10Like)
            .with_sizes(0, 30)
            .generate();
        let mut net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 2);
        let eval = evaluate_exits(&mut net, &data.test);
        assert_eq!(eval.num_exits(), 3);
        assert_eq!(eval.samples, 30);
        for e in 0..3 {
            assert_eq!(eval.correct[e].len(), 30);
            assert_eq!(eval.confidence[e].len(), 30);
            assert!(eval.confidence[e].iter().all(|&c| (0.0..=1.0).contains(&c)));
        }
        let r = eval.at_threshold(0.5);
        assert!((r.exit_fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
