//! The CNV topology (FINN's VGG-like CNN) with configurable width and the
//! paper's early-exit placement.
//!
//! Full CNV is `2x(conv-BN-act) pool` twice, `2x(conv-BN-act)`, then three
//! FC layers, with 64/128/256 conv channels and 512-wide FCs. The
//! reproduction keeps the exact block structure but scales all channel
//! counts by a **width multiplier** so CPU training stays tractable
//! (DESIGN.md §1). `CnvConfig { width: 64 }` is bit-for-bit the paper's
//! CNVW2A2 topology.

use crate::layers::{BatchNorm, Layer, MaxPool2d, QuantConv2d, QuantLinear, QuantReLU};
use crate::network::{EarlyExitNetwork, ExitBranch};
use crate::quant::QuantSpec;
use adapex_tensor::conv::ConvGeometry;
use adapex_tensor::rng::rng_from_seed;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Width/precision configuration of a CNV instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CnvConfig {
    /// Channel multiplier: conv blocks get `w, w, 2w, 2w, 4w, 4w`
    /// channels and FCs are `8w` wide. Full CNV is `width = 64`.
    pub width: usize,
    /// Weight bit width (2 for CNVW2A2).
    pub weight_bits: u32,
    /// Activation bit width (2 for CNVW2A2).
    pub act_bits: u32,
}

impl CnvConfig {
    /// The paper's full CNVW2A2 (64/128/256 channels, 512-wide FCs).
    pub fn cnv_w2a2() -> Self {
        CnvConfig {
            width: 64,
            weight_bits: 2,
            act_bits: 2,
        }
    }

    /// Width-scaled CNVW2A2.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn scaled(width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        CnvConfig {
            width,
            weight_bits: 2,
            act_bits: 2,
        }
    }

    /// The reproduction's default training scale (width 16).
    pub fn repro_default() -> Self {
        CnvConfig::scaled(16)
    }

    /// Minimal scale for unit tests (width 4).
    pub fn tiny() -> Self {
        CnvConfig::scaled(4)
    }

    /// Conv-block output channel counts `[w, w, 2w, 2w, 4w, 4w]`.
    pub fn conv_channels(&self) -> [usize; 6] {
        let w = self.width;
        [w, w, 2 * w, 2 * w, 4 * w, 4 * w]
    }

    /// FC hidden width (`8w`; 512 for full CNV).
    pub fn fc_width(&self) -> usize {
        8 * self.width
    }

    fn wspec(&self) -> QuantSpec {
        QuantSpec::signed(self.weight_bits)
    }

    fn act(&self) -> QuantReLU {
        QuantReLU::new(QuantSpec::unsigned(self.act_bits), 2.0)
    }

    /// Builds the plain (no-early-exit) CNV backbone.
    pub fn build(&self, num_classes: usize, seed: u64) -> EarlyExitNetwork {
        let mut rng = rng_from_seed(seed);
        let backbone = self.build_backbone(num_classes, &mut rng);
        EarlyExitNetwork::new(backbone, Vec::new(), vec![3, 32, 32], num_classes)
    }

    /// Builds CNV with early exits attached per `exits`.
    ///
    /// # Panics
    ///
    /// Panics if `exits.after_blocks` names a block other than 1 or 2
    /// (block 3's 1x1 maps cannot host the paper's 3x3 exit conv).
    pub fn build_early_exit(
        &self,
        num_classes: usize,
        exits: &ExitsConfig,
        seed: u64,
    ) -> EarlyExitNetwork {
        let mut rng = rng_from_seed(seed);
        let backbone = self.build_backbone(num_classes, &mut rng);
        let mut branches = Vec::new();
        for &block in &exits.after_blocks {
            branches.push(self.build_exit(block, num_classes, &mut rng));
        }
        branches.sort_by_key(|b| b.attach_after);
        EarlyExitNetwork::new(backbone, branches, vec![3, 32, 32], num_classes)
    }

    /// Backbone layers. Indices (documented because exits attach by
    /// index): conv activations after conv2 and conv4 sit at 5 and 12.
    fn build_backbone(&self, num_classes: usize, rng: &mut StdRng) -> Vec<Layer> {
        let ch = self.conv_channels();
        let ws = self.wspec();
        let g = ConvGeometry::new(3); // CNV uses unpadded 3x3 convs
        let mut layers = Vec::new();
        let push_conv = |layers: &mut Vec<Layer>, cin: usize, cout: usize, rng: &mut StdRng| {
            layers.push(Layer::Conv(QuantConv2d::new(cin, cout, g, ws, rng)));
            layers.push(Layer::Norm(BatchNorm::new(cout)));
            layers.push(Layer::Act(self.act()));
        };
        // Block 1: 32 -> 30 -> 28 -> pool -> 14
        push_conv(&mut layers, 3, ch[0], rng);
        push_conv(&mut layers, ch[0], ch[1], rng);
        layers.push(Layer::Pool(MaxPool2d::new(2)));
        // Block 2: 14 -> 12 -> 10 -> pool -> 5
        push_conv(&mut layers, ch[1], ch[2], rng);
        push_conv(&mut layers, ch[2], ch[3], rng);
        layers.push(Layer::Pool(MaxPool2d::new(2)));
        // Block 3: 5 -> 3 -> 1
        push_conv(&mut layers, ch[3], ch[4], rng);
        push_conv(&mut layers, ch[4], ch[5], rng);
        // Classifier.
        let fc = self.fc_width();
        layers.push(Layer::Flatten);
        layers.push(Layer::Linear(QuantLinear::new(ch[5], fc, ws, rng)));
        layers.push(Layer::Norm(BatchNorm::new(fc)));
        layers.push(Layer::Act(self.act()));
        layers.push(Layer::Linear(QuantLinear::new(fc, fc, ws, rng)));
        layers.push(Layer::Norm(BatchNorm::new(fc)));
        layers.push(Layer::Act(self.act()));
        layers.push(Layer::Linear(QuantLinear::new(fc, num_classes, ws, rng)));
        layers
    }

    /// One exit branch per the paper's recipe (Sec. IV-A1): a conv with
    /// the host block's configuration, a `k = ⌊DIM/2⌋` max-pool that
    /// shrinks the map to 2x2 (making FPGA synthesis of the following FCs
    /// feasible), then two FC layers configured like CNV's own.
    fn build_exit(&self, block: usize, num_classes: usize, rng: &mut StdRng) -> ExitBranch {
        let ch = self.conv_channels();
        let ws = self.wspec();
        let g = ConvGeometry::new(3);
        let fc = self.fc_width();
        // (attach index, channels, conv output DIM) per host block; see
        // build_backbone for the index layout.
        let (attach_after, c, dim_after_conv) = match block {
            1 => (5usize, ch[1], 26usize),  // 28x28 map -> conv -> 26
            2 => (12, ch[3], 8),            // 10x10 map -> conv -> 8
            other => panic!("exits are supported after blocks 1 and 2, not {other}"),
        };
        let pool_k = dim_after_conv / 2; // paper: k = floor(DIM/2) -> 2x2 map
        let features = c * 2 * 2;
        let layers = vec![
            Layer::Conv(QuantConv2d::new(c, c, g, ws, rng)),
            Layer::Norm(BatchNorm::new(c)),
            Layer::Act(self.act()),
            Layer::Pool(MaxPool2d::new(pool_k)),
            Layer::Flatten,
            Layer::Linear(QuantLinear::new(features, fc, ws, rng)),
            Layer::Norm(BatchNorm::new(fc)),
            Layer::Act(self.act()),
            Layer::Linear(QuantLinear::new(fc, num_classes, ws, rng)),
        ];
        ExitBranch {
            attach_after,
            layers,
        }
    }
}

/// Where and how early exits attach — the paper's "Exits Configuration"
/// input to the library generator (Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExitsConfig {
    /// Host blocks (1-based). The paper's case study uses `[1, 2]`.
    pub after_blocks: Vec<usize>,
    /// Joint-loss weight of the first exit (paper: 1.0).
    pub first_exit_weight: f32,
    /// Joint-loss weight of every later exit including the final one
    /// (paper: 0.3).
    pub other_exit_weight: f32,
    /// Whether dataflow-aware pruning should also prune the exits' conv
    /// layers — the paper's `pruned` flag (Sec. IV-A2).
    pub prune_exits: bool,
}

impl ExitsConfig {
    /// The paper's case-study configuration: exits after blocks 1 and 2,
    /// loss weights 1.0/0.3, exits not pruned.
    pub fn paper_default() -> Self {
        ExitsConfig {
            after_blocks: vec![1, 2],
            first_exit_weight: 1.0,
            other_exit_weight: 0.3,
            prune_exits: false,
        }
    }

    /// Joint-loss weights for a network with `num_exits` total exits
    /// (early + final), first exit weighted `first_exit_weight`.
    pub fn loss_weights(&self, num_exits: usize) -> Vec<f32> {
        (0..num_exits)
            .map(|i| {
                if i == 0 && num_exits > 1 {
                    self.first_exit_weight
                } else {
                    self.other_exit_weight
                }
            })
            .collect()
    }
}

impl Default for ExitsConfig {
    fn default() -> Self {
        ExitsConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Activation;

    #[test]
    fn full_cnv_has_paper_channel_counts() {
        let cfg = CnvConfig::cnv_w2a2();
        assert_eq!(cfg.conv_channels(), [64, 64, 128, 128, 256, 256]);
        assert_eq!(cfg.fc_width(), 512);
    }

    #[test]
    fn backbone_shapes_propagate_to_logits() {
        let mut net = CnvConfig::tiny().build(10, 3);
        let x = Activation::zeros(2, &[3, 32, 32]);
        let outs = net.forward(&x, false);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].dims, vec![10]);
    }

    #[test]
    fn early_exit_build_matches_paper_layout() {
        let net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 3);
        assert_eq!(net.num_exits(), 3);
        assert_eq!(net.exits[0].attach_after, 5);
        assert_eq!(net.exits[1].attach_after, 12);
        // Exit branch: conv, bn, act, pool, flatten, fc, bn, act, fc.
        assert_eq!(net.exits[0].layers.len(), 9);
    }

    #[test]
    fn early_exit_forward_shapes() {
        let mut net = CnvConfig::tiny().build_early_exit(43, &ExitsConfig::paper_default(), 3);
        let x = Activation::zeros(1, &[3, 32, 32]);
        let outs = net.forward(&x, false);
        assert_eq!(outs.len(), 3);
        for o in &outs {
            assert_eq!(o.dims, vec![43]);
        }
    }

    #[test]
    fn loss_weights_follow_paper() {
        let cfg = ExitsConfig::paper_default();
        assert_eq!(cfg.loss_weights(3), vec![1.0, 0.3, 0.3]);
        assert_eq!(cfg.loss_weights(1), vec![0.3]);
    }

    #[test]
    #[should_panic(expected = "exits are supported after blocks 1 and 2")]
    fn rejects_block_three_exit() {
        let cfg = ExitsConfig {
            after_blocks: vec![3],
            ..ExitsConfig::paper_default()
        };
        CnvConfig::tiny().build_early_exit(10, &cfg, 1);
    }

    #[test]
    fn seeding_reproduces_weights() {
        let mut a = CnvConfig::tiny().build(10, 9);
        let mut b = CnvConfig::tiny().build(10, 9);
        assert_eq!(a.param_count(), b.param_count());
        let x = Activation::new((0..3 * 32 * 32).map(|v| (v as f32 * 0.01).sin()).collect(), 1, vec![3, 32, 32]);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_eq!(ya[0].data, yb[0].data);
    }
}
