//! Staged, early-exit-aware batch executor for the serving data plane.
//!
//! [`evaluate_exits`](crate::eval::evaluate_exits) runs the *full*
//! network on every sample and picks the exit afterwards — right for
//! threshold sweeps, wasteful for serving, where a request whose exit-1
//! confidence clears the operating point's threshold never needs the
//! deeper backbone. [`BatchExecutor`] runs a batch in **stages**: the
//! backbone segment up to an exit's attachment point, the exit head,
//! then a confidence test that retires confident samples and *compacts*
//! the survivors before the next (more expensive) stage. Retired
//! samples pay only for the stages they actually used — on CNV shapes
//! the tail past exit 1 is ~25–30 % of the forward, and the skipped
//! exit-2 head is paid only by samples that reach it.
//!
//! Two invariants make this serving-safe:
//!
//! - **Bit-identity with the reference path.** Every layer processes
//!   samples independently (convs loop per sample; GEMM row results
//!   never reassociate across rows), so compaction cannot change any
//!   survivor's arithmetic. The verdicts (exit taken, class,
//!   confidence) are exactly what [`ExitEvaluation::at_threshold`]
//!   computes from a full forward — pinned by the tests below.
//! - **Worker-count invariance.** A batch is cut into
//!   `ceil(n / workers)`-sample contiguous chunks, one per worker, each
//!   with its own network clone; verdicts land in disjoint output
//!   slices by original sample index. Chunk boundaries depend only on
//!   `(n, workers)` and per-sample results only on the sample, so
//!   output bytes are identical at any worker count.
//!
//! The executor also owns the **engine plan**: int2-eligible conv
//! layers route to the popcount engine only where
//! [`int2::conv_engine_profitable`] says the packing tax amortizes
//! ([`EnginePlan::Auto`]); both engine choices are bit-identical, so
//! the plan affects wall-clock only, never verdicts.
//!
//! Steady-state serving performs **zero heap allocations per batch**
//! after warmup: activations and scratch cycle through the
//! [`adapex_tensor::workspace`] pools and verdict vectors retain their
//! capacity (pinned by `crates/nn/tests/alloc_regression.rs`).
//!
//! [`ExitEvaluation::at_threshold`]: crate::eval::ExitEvaluation::at_threshold

use crate::layers::{Activation, Layer};
use crate::loss::{confidence, softmax_into};
use crate::network::EarlyExitNetwork;
use adapex_tensor::int2;
use adapex_tensor::workspace::{recycle_f32, recycle_usize, take_f32_from, take_f32_uninit, take_usize_from};

/// How the executor routes int2-eligible conv layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePlan {
    /// Shape-aware: popcount engine only where
    /// [`int2::conv_engine_profitable`] predicts a win, f32-over-codes
    /// elsewhere. The serving default.
    Auto,
    /// Leave routing as the eval path ships it (engine for every
    /// eligible layer) — PR 7 behavior, the differential-testing axis.
    Int2Always,
    /// Force the f32-over-codes fallback everywhere.
    F32Codes,
}

/// Executor configuration, normally derived from the runtime manager's
/// operating point (threshold) and the serve CLI (`--workers`).
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Confidence threshold (the operating point's CT): first exit
    /// whose confidence clears it wins, final exit is the fallback.
    pub threshold: f32,
    /// Worker threads per batch (chunked, order-preserving). `0` is
    /// treated as `1`.
    pub workers: usize,
    /// Engine routing plan.
    pub engine: EnginePlan,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            threshold: 0.5,
            workers: 1,
            engine: EnginePlan::Auto,
        }
    }
}

/// Per-sample verdicts for one batch, indexed by the sample's position
/// in the submitted batch. Reused across batches (capacity persists).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchVerdicts {
    /// Exit taken (0-based; `num_exits - 1` is the final exit).
    pub exit: Vec<usize>,
    /// Predicted class (argmax of the taken exit's probabilities).
    pub class: Vec<usize>,
    /// Confidence (max probability) at the taken exit.
    pub confidence: Vec<f32>,
}

impl BatchVerdicts {
    /// Clears and resizes for `n` samples without shrinking capacity.
    fn reset(&mut self, n: usize) {
        self.exit.clear();
        self.exit.resize(n, 0);
        self.class.clear();
        self.class.resize(n, 0);
        self.confidence.clear();
        self.confidence.resize(n, 0.0);
    }

    /// Number of samples that took exit `e`, for admission accounting.
    pub fn count_exit(&self, e: usize) -> usize {
        self.exit.iter().filter(|&&x| x == e).count()
    }
}

/// Staged early-exit batch executor; see the module docs.
pub struct BatchExecutor {
    /// One network clone per worker; index `w` serves chunk `w`.
    nets: Vec<EarlyExitNetwork>,
    threshold: f32,
    num_exits: usize,
}

impl BatchExecutor {
    /// Builds an executor around `net` (cloned per worker) and applies
    /// the engine plan to every conv layer.
    pub fn new(net: &EarlyExitNetwork, cfg: &ExecutorConfig) -> Self {
        let mut template = net.clone();
        apply_engine_plan(&mut template, cfg.engine);
        let workers = cfg.workers.max(1);
        let mut nets = Vec::with_capacity(workers);
        for _ in 0..workers.saturating_sub(1) {
            nets.push(template.clone());
        }
        nets.push(template);
        BatchExecutor {
            nets,
            threshold: cfg.threshold,
            num_exits: net.num_exits(),
        }
    }

    /// Retunes the confidence threshold (a CT-only operating-point
    /// change — no reconfiguration, takes effect next batch).
    pub fn set_threshold(&mut self, threshold: f32) {
        self.threshold = threshold;
    }

    /// Current confidence threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Total exits (early + final).
    pub fn num_exits(&self) -> usize {
        self.num_exits
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.nets.len()
    }

    /// How many conv layers the plan routes to the popcount engine vs
    /// the f32-over-codes path, for reports.
    pub fn engine_split(&self) -> (usize, usize) {
        let mut engine = 0;
        let mut f32_codes = 0;
        let net = &self.nets[0];
        for l in net.backbone.iter().chain(net.exits.iter().flat_map(|e| e.layers.iter())) {
            if let Layer::Conv(c) = l {
                if c.prefer_f32_codes {
                    f32_codes += 1;
                } else {
                    engine += 1;
                }
            }
        }
        (engine, f32_codes)
    }

    /// Runs one batch, writing per-sample verdicts into `out` (resized
    /// to `x.n`; capacity reused across calls).
    ///
    /// # Panics
    ///
    /// Panics if `x.dims` doesn't match the network input shape.
    pub fn run_batch(&mut self, x: &Activation, out: &mut BatchVerdicts) {
        assert_eq!(
            x.dims, self.nets[0].input_dims,
            "batch shape vs network input"
        );
        let n = x.n;
        out.reset(n);
        if n == 0 {
            return;
        }
        let workers = self.nets.len();
        let threshold = self.threshold;
        if workers == 1 || n == 1 {
            run_chunk(
                &mut self.nets[0],
                x,
                0,
                n,
                threshold,
                &mut out.exit,
                &mut out.class,
                &mut out.confidence,
            );
            return;
        }
        // Fixed chunking: depends only on (n, workers), so verdict
        // bytes are invariant across worker counts by per-sample
        // independence of every layer kernel.
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            let mut exit_rest: &mut [usize] = &mut out.exit;
            let mut class_rest: &mut [usize] = &mut out.class;
            let mut conf_rest: &mut [f32] = &mut out.confidence;
            for (w, net) in self.nets.iter_mut().enumerate() {
                let lo = w * chunk;
                if lo >= n {
                    break;
                }
                let hi = (lo + chunk).min(n);
                let (exit_c, er) = exit_rest.split_at_mut(hi - lo);
                let (class_c, cr) = class_rest.split_at_mut(hi - lo);
                let (conf_c, fr) = conf_rest.split_at_mut(hi - lo);
                exit_rest = er;
                class_rest = cr;
                conf_rest = fr;
                s.spawn(move || {
                    run_chunk(net, x, lo, hi, threshold, exit_c, class_c, conf_c);
                });
            }
        });
    }
}

/// Applies the engine routing plan to every conv layer of `net`.
///
/// `Auto` consults [`int2::conv_engine_profitable`]: with the direct
/// windowed path available the packing tax is paid once per image, so
/// the profitable `c_out` threshold drops by the k² window reuse;
/// behind `ADAPEX_INT2_DIRECT=0` it falls back to the per-column model.
fn apply_engine_plan(net: &mut EarlyExitNetwork, plan: EnginePlan) {
    let layers = net
        .backbone
        .iter_mut()
        .chain(net.exits.iter_mut().flat_map(|e| e.layers.iter_mut()));
    for l in layers {
        if let Layer::Conv(c) = l {
            c.prefer_f32_codes = match plan {
                EnginePlan::Auto => !int2::conv_engine_profitable(c.c_out, c.geom.kernel),
                EnginePlan::Int2Always => false,
                EnginePlan::F32Codes => true,
            };
        }
    }
}

/// Staged forward over samples `lo..hi` of `x`. Verdict slices are
/// indexed by position within the chunk.
#[allow(clippy::too_many_arguments)]
fn run_chunk(
    net: &mut EarlyExitNetwork,
    x: &Activation,
    lo: usize,
    hi: usize,
    threshold: f32,
    exit_out: &mut [usize],
    class_out: &mut [usize],
    conf_out: &mut [f32],
) {
    let n0 = hi - lo;
    let per = x.sample_len();
    let final_exit = net.exits.len();
    // The chunk's working activation and the survivors' chunk-local
    // indices; both cycle through the workspace pools.
    let mut cur = Activation {
        data: take_f32_from(&x.data[lo * per..hi * per]),
        n: n0,
        dims: take_usize_from(&x.dims),
        quant: x.quant,
    };
    let mut alive = take_usize_from(&[]);
    alive.extend(0..n0);
    let mut probs = take_f32_uninit(net.num_classes);
    let mut seg_start = 0usize;

    for ei in 0..net.exits.len() {
        let attach = net.exits[ei].attach_after;
        for l in &mut net.backbone[seg_start..=attach] {
            cur = l.forward_owned(cur, false);
        }
        seg_start = attach + 1;
        let mut logits = cur.clone();
        for l in &mut net.exits[ei].layers {
            logits = l.forward_owned(logits, false);
        }
        // Retire confident samples, compact survivors in place.
        let sample_len = cur.sample_len();
        let mut keep = 0usize;
        for s in 0..logits.n {
            softmax_into(logits.sample(s), &mut probs);
            let conf = confidence(&probs);
            let local = alive[s];
            if conf >= threshold {
                exit_out[local] = ei;
                class_out[local] = argmax(&probs);
                conf_out[local] = conf;
            } else {
                if keep != s {
                    cur.data
                        .copy_within(s * sample_len..(s + 1) * sample_len, keep * sample_len);
                    alive[keep] = local;
                }
                keep += 1;
            }
        }
        drop(logits);
        if keep == 0 {
            recycle_f32(probs);
            recycle_usize(alive);
            return;
        }
        cur.data.truncate(keep * sample_len);
        cur.n = keep;
        alive.truncate(keep);
    }

    for l in &mut net.backbone[seg_start..] {
        cur = l.forward_owned(cur, false);
    }
    for (s, &local) in alive.iter().enumerate() {
        softmax_into(cur.sample(s), &mut probs);
        exit_out[local] = final_exit;
        class_out[local] = argmax(&probs);
        conf_out[local] = confidence(&probs);
    }
    recycle_f32(probs);
    recycle_usize(alive);
}

/// First-max argmax, exactly as the eval scorer computes predictions.
fn argmax(probs: &[f32]) -> usize {
    let mut best = 0;
    for k in 1..probs.len() {
        if probs[k] > probs[best] {
            best = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnv::{CnvConfig, ExitsConfig};
    use crate::eval::{evaluate_exits_with, EvalConfig};
    use adapex_dataset::{Difficulty, LabeledImages};
    use adapex_tensor::rng::rng_from_seed;
    use rand::RngExt;

    fn tiny_net() -> EarlyExitNetwork {
        CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 3)
    }

    fn images(n: usize, dims: &[usize], seed: u64) -> LabeledImages {
        let mut rng = rng_from_seed(seed);
        let per: usize = dims.iter().product();
        let mut imgs = LabeledImages::new(dims[0], dims[1], dims[2]);
        let mut buf = vec![0.0f32; per];
        for _ in 0..n {
            for v in buf.iter_mut() {
                *v = rng.random::<f32>();
            }
            let label = rng.random_range(0..10usize);
            imgs.push(&buf, label, Difficulty::Easy);
        }
        imgs
    }

    fn batch_of(images: &LabeledImages, dims: Vec<usize>) -> Activation {
        let idx: Vec<usize> = (0..images.len()).collect();
        let (pixels, _) = images.gather(&idx);
        Activation::new(pixels, idx.len(), dims)
    }

    /// Staged verdicts == full-forward `at_threshold` verdicts, at
    /// every engine plan and across thresholds.
    #[test]
    fn staged_matches_reference_at_threshold() {
        let net = tiny_net();
        let imgs = images(23, &net.input_dims, 7);
        let reference = evaluate_exits_with(
            &mut net.clone(),
            &imgs,
            EvalConfig { batch: 23, jobs: 1 },
        );
        let x = batch_of(&imgs, net.input_dims.clone());
        for threshold in [0.05f32, 0.2, 0.35, 0.9] {
            let mut expected_exit = vec![0usize; imgs.len()];
            for (s, slot) in expected_exit.iter_mut().enumerate() {
                let mut chosen = reference.num_exits() - 1;
                for e in 0..reference.num_exits() - 1 {
                    if reference.confidence[e][s] >= threshold {
                        chosen = e;
                        break;
                    }
                }
                *slot = chosen;
            }
            for plan in [EnginePlan::Auto, EnginePlan::Int2Always, EnginePlan::F32Codes] {
                let mut exec = BatchExecutor::new(
                    &net,
                    &ExecutorConfig {
                        threshold,
                        workers: 1,
                        engine: plan,
                    },
                );
                let mut out = BatchVerdicts::default();
                exec.run_batch(&x, &mut out);
                assert_eq!(out.exit, expected_exit, "plan {plan:?} CT {threshold}");
                for s in 0..imgs.len() {
                    assert_eq!(
                        out.confidence[s].to_bits(),
                        reference.confidence[out.exit[s]][s].to_bits(),
                        "sample {s} confidence, plan {plan:?}"
                    );
                }
            }
        }
    }

    /// Verdict bytes are identical at any worker count.
    #[test]
    fn worker_count_invariant() {
        let net = tiny_net();
        let imgs = images(17, &net.input_dims, 11);
        let x = batch_of(&imgs, net.input_dims.clone());
        let run = |workers: usize| {
            let mut exec = BatchExecutor::new(
                &net,
                &ExecutorConfig {
                    threshold: 0.3,
                    workers,
                    engine: EnginePlan::Auto,
                },
            );
            let mut out = BatchVerdicts::default();
            exec.run_batch(&x, &mut out);
            out
        };
        let w1 = run(1);
        for workers in [2, 3, 4, 8] {
            let w = run(workers);
            assert_eq!(w1, w, "verdicts diverged at {workers} workers");
        }
    }

    /// Batch composition cannot change a sample's verdict: singletons
    /// match the batch run bit-for-bit.
    #[test]
    fn batch_composition_invariant() {
        let net = tiny_net();
        let imgs = images(9, &net.input_dims, 13);
        let x = batch_of(&imgs, net.input_dims.clone());
        let cfg = ExecutorConfig {
            threshold: 0.3,
            workers: 1,
            engine: EnginePlan::Auto,
        };
        let mut exec = BatchExecutor::new(&net, &cfg);
        let mut batch_out = BatchVerdicts::default();
        exec.run_batch(&x, &mut batch_out);
        let per = x.sample_len();
        for s in 0..x.n {
            let single = Activation::new(
                x.data[s * per..(s + 1) * per].to_vec(),
                1,
                net.input_dims.clone(),
            );
            let mut out = BatchVerdicts::default();
            exec.run_batch(&single, &mut out);
            assert_eq!(out.exit[0], batch_out.exit[s], "sample {s} exit");
            assert_eq!(out.class[0], batch_out.class[s], "sample {s} class");
            assert_eq!(
                out.confidence[0].to_bits(),
                batch_out.confidence[s].to_bits(),
                "sample {s} confidence"
            );
        }
    }

    /// The Auto plan routes small convs to f32-over-codes and leaves
    /// verdicts untouched relative to Int2Always (bit-identity of the
    /// two engines).
    #[test]
    fn engine_plan_is_speed_only() {
        let net = tiny_net();
        let split_at = |plan| {
            BatchExecutor::new(
                &net,
                &ExecutorConfig {
                    engine: plan,
                    ..ExecutorConfig::default()
                },
            )
            .engine_split()
        };
        // With the direct path on, the once-per-image packing model
        // routes tiny()'s 8/16-wide convs to the engine while the
        // 4-wide ones (< ENGINE_MIN_ITEMS_DIRECT) keep the fallback.
        int2::override_direct_enabled(Some(true));
        let (engine, f32_codes) = split_at(EnginePlan::Auto);
        assert!(engine > 0, "wide tiny() convs must route to the engine");
        assert!(f32_codes > 0, "narrow tiny() convs must keep the fallback");
        // Direct off: the per-column model, under which every tiny()
        // width is < ENGINE_MIN_ITEMS, prefers the fallback everywhere.
        int2::override_direct_enabled(Some(false));
        let (engine, f32_codes) = split_at(EnginePlan::Auto);
        assert_eq!(engine, 0);
        assert!(f32_codes > 0);
        int2::override_direct_enabled(None);
        let (engine, _) = split_at(EnginePlan::Int2Always);
        assert!(engine > 0);
    }
}
