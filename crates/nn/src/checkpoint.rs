//! Versioned binary checkpoints of [`EarlyExitNetwork`] parameters.
//!
//! A checkpoint stores the exact `f32` bits of every learned tensor —
//! conv/linear weights and biases, batch-norm gamma/beta **and the
//! running statistics** the eval-mode forward reads — so that a loaded
//! network produces bit-identical forward passes and
//! [`ExitEvaluation`](crate::eval::ExitEvaluation)s. Structure
//! (layer kinds, shapes, exit attachment points) is *not* stored: the
//! caller rebuilds the architecture (it is cheap and deterministic) and
//! the loader verifies every tensor length against it, so a checkpoint
//! can never be silently applied to the wrong architecture.
//!
//! # Wire format (all integers little-endian)
//!
//! ```text
//! magic    8 bytes  "ADPXCKPT"
//! version  u32      CHECKPOINT_VERSION
//! count    u32      number of tensors
//! tensor*  u32 len, then len × f32 raw bits
//! checksum u64      FNV-1a-64 over every preceding byte
//! ```
//!
//! The trailing checksum turns truncation and bit corruption into a
//! clean [`CheckpointError`], which cache readers treat as a miss
//! (recompute) rather than an answer.

use crate::layers::{Layer, Param};
use crate::network::EarlyExitNetwork;
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// File magic identifying an AdaPEx checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"ADPXCKPT";

/// Current wire-format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint failed to load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The file's version is not [`CHECKPOINT_VERSION`].
    BadVersion(u32),
    /// The file ended before the declared payload did.
    Truncated,
    /// The trailing FNV-1a-64 checksum does not match the payload.
    BadChecksum,
    /// Tensor `index` has `got` elements where the network expects
    /// `expected` — the checkpoint belongs to a different architecture.
    ShapeMismatch {
        /// Tensor position in the serialization walk.
        index: usize,
        /// Element count the target network expects.
        expected: usize,
        /// Element count found in the file.
        got: usize,
    },
    /// The file declares `got` tensors where the network has `expected`.
    CountMismatch {
        /// Tensor count the target network expects.
        expected: usize,
        /// Tensor count found in the file.
        got: usize,
    },
    /// Extra bytes follow the checksum.
    TrailingBytes,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not an AdaPEx checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {CHECKPOINT_VERSION})")
            }
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadChecksum => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::ShapeMismatch { index, expected, got } => write!(
                f,
                "checkpoint tensor {index} has {got} elements, network expects {expected}"
            ),
            CheckpointError::CountMismatch { expected, got } => {
                write!(f, "checkpoint holds {got} tensors, network expects {expected}")
            }
            CheckpointError::TrailingBytes => write!(f, "checkpoint has trailing bytes"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A mutable view of one serialized tensor inside the network.
enum TensorMut<'a> {
    /// A learned parameter; loading must bump its version so quantized
    /// weight caches are invalidated.
    Learned(&'a mut Param),
    /// Raw state (batch-norm running statistics).
    Raw(&'a mut Vec<f32>),
}

/// Visits every serialized tensor of `layer` in wire order, read-only.
fn layer_tensors<'a>(layer: &'a Layer, f: &mut impl FnMut(&'a [f32])) {
    match layer {
        Layer::Conv(c) => {
            f(&c.weight.value);
            f(&c.bias.value);
        }
        Layer::Linear(l) => {
            f(&l.weight.value);
            f(&l.bias.value);
        }
        Layer::Norm(n) => {
            f(&n.gamma.value);
            f(&n.beta.value);
            f(&n.running_mean);
            f(&n.running_var);
        }
        Layer::Pool(_) | Layer::Act(_) | Layer::Flatten => {}
    }
}

/// Visits every serialized tensor of `layer` in wire order, mutably.
fn layer_tensors_mut<'a>(layer: &'a mut Layer, f: &mut impl FnMut(TensorMut<'a>)) {
    match layer {
        Layer::Conv(c) => {
            f(TensorMut::Learned(&mut c.weight));
            f(TensorMut::Learned(&mut c.bias));
        }
        Layer::Linear(l) => {
            f(TensorMut::Learned(&mut l.weight));
            f(TensorMut::Learned(&mut l.bias));
        }
        Layer::Norm(n) => {
            f(TensorMut::Learned(&mut n.gamma));
            f(TensorMut::Learned(&mut n.beta));
            f(TensorMut::Raw(&mut n.running_mean));
            f(TensorMut::Raw(&mut n.running_var));
        }
        Layer::Pool(_) | Layer::Act(_) | Layer::Flatten => {}
    }
}

/// Collects read-only views of every tensor in wire order: backbone
/// layers first, then each exit's layers, both in execution order.
fn network_tensors(net: &EarlyExitNetwork) -> Vec<&[f32]> {
    let mut out = Vec::new();
    for layer in &net.backbone {
        layer_tensors(layer, &mut |t| out.push(t));
    }
    for exit in &net.exits {
        for layer in &exit.layers {
            layer_tensors(layer, &mut |t| out.push(t));
        }
    }
    out
}

/// Collects mutable views of every tensor, same order as
/// [`network_tensors`].
fn network_tensors_mut(net: &mut EarlyExitNetwork) -> Vec<TensorMut<'_>> {
    let mut out = Vec::new();
    for layer in &mut net.backbone {
        layer_tensors_mut(layer, &mut |t| out.push(t));
    }
    for exit in &mut net.exits {
        for layer in &mut exit.layers {
            layer_tensors_mut(layer, &mut |t| out.push(t));
        }
    }
    out
}

/// FNV-1a-64 over `bytes`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes `net`'s tensors into the checkpoint wire format.
pub fn checkpoint_bytes(net: &EarlyExitNetwork) -> Vec<u8> {
    let tensors = network_tensors(net);
    let payload: usize = tensors.iter().map(|t| 4 + 4 * t.len()).sum();
    let mut out = Vec::with_capacity(8 + 4 + 4 + payload + 8);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&(tensors.len() as u32).to_le_bytes());
    for t in tensors {
        out.extend_from_slice(&(t.len() as u32).to_le_bytes());
        for &v in t {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Restores `net`'s tensors from checkpoint `bytes`.
///
/// Validates magic, version, checksum and every tensor shape against the
/// network *before* writing anything, so a failed load leaves `net`
/// untouched. Loaded [`Param`]s are [`touch`](Param::touch)ed to
/// invalidate derived quantized-weight caches.
pub fn load_checkpoint_bytes(
    net: &mut EarlyExitNetwork,
    bytes: &[u8],
) -> Result<(), CheckpointError> {
    let header = 8 + 4 + 4;
    if bytes.len() < header + 8 {
        return Err(CheckpointError::Truncated);
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a64(payload) != declared {
        return Err(CheckpointError::BadChecksum);
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let mut targets = network_tensors_mut(net);
    if count != targets.len() {
        return Err(CheckpointError::CountMismatch {
            expected: targets.len(),
            got: count,
        });
    }

    // Pass 1: validate shapes and record each tensor's data offset.
    let mut offsets = Vec::with_capacity(count);
    let mut pos = header;
    for (index, target) in targets.iter().enumerate() {
        if payload.len() < pos + 4 {
            return Err(CheckpointError::Truncated);
        }
        let len = u32::from_le_bytes(payload[pos..pos + 4].try_into().unwrap()) as usize;
        let expected = match target {
            TensorMut::Learned(p) => p.value.len(),
            TensorMut::Raw(v) => v.len(),
        };
        if len != expected {
            return Err(CheckpointError::ShapeMismatch {
                index,
                expected,
                got: len,
            });
        }
        pos += 4;
        if payload.len() < pos + 4 * len {
            return Err(CheckpointError::Truncated);
        }
        offsets.push(pos);
        pos += 4 * len;
    }
    if pos != payload.len() {
        return Err(CheckpointError::TrailingBytes);
    }

    // Pass 2: copy the bits in.
    for (target, &off) in targets.iter_mut().zip(&offsets) {
        let dst: &mut Vec<f32> = match target {
            TensorMut::Learned(p) => &mut p.value,
            TensorMut::Raw(v) => v,
        };
        for (i, v) in dst.iter_mut().enumerate() {
            let at = off + 4 * i;
            *v = f32::from_le_bytes(payload[at..at + 4].try_into().unwrap());
        }
        if let TensorMut::Learned(p) = target {
            p.touch();
        }
    }
    Ok(())
}

/// Writes `net`'s checkpoint to `path` atomically (temp file + rename).
pub fn save_checkpoint(net: &EarlyExitNetwork, path: &Path) -> std::io::Result<()> {
    let bytes = checkpoint_bytes(net);
    write_atomic(path, &bytes)
}

/// Reads and applies the checkpoint at `path`; see
/// [`load_checkpoint_bytes`] for validation semantics.
pub fn load_checkpoint(net: &mut EarlyExitNetwork, path: &Path) -> Result<(), CheckpointError> {
    let bytes = std::fs::read(path)?;
    load_checkpoint_bytes(net, &bytes)
}

/// Writes `bytes` to `path` via a unique temp file in the same directory
/// followed by a rename, so concurrent writers never expose a partial
/// file and the last writer wins with a complete one.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnv::{CnvConfig, ExitsConfig};

    fn tiny_net(seed: u64) -> EarlyExitNetwork {
        let mut net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 2);
        // Make the tensors distinctive so a wrong restore can't pass.
        let mut k = seed as f32;
        net.for_each_param(|p| {
            for v in &mut p.value {
                *v += 0.001 * k;
                k += 1.0;
            }
            p.touch();
        });
        net
    }

    #[test]
    fn roundtrip_restores_every_tensor_bit_for_bit() {
        let src = tiny_net(3);
        let bytes = checkpoint_bytes(&src);
        let mut dst = tiny_net(7);
        assert_ne!(src, dst);
        load_checkpoint_bytes(&mut dst, &bytes).unwrap();
        assert_eq!(network_tensors(&src), network_tensors(&dst));
    }

    #[test]
    fn running_stats_are_serialized() {
        let mut src = tiny_net(1);
        for layer in &mut src.backbone {
            if let Layer::Norm(n) = layer {
                n.running_mean.iter_mut().for_each(|v| *v = 0.25);
                n.running_var.iter_mut().for_each(|v| *v = 4.0);
            }
        }
        let bytes = checkpoint_bytes(&src);
        let mut dst = tiny_net(1);
        load_checkpoint_bytes(&mut dst, &bytes).unwrap();
        let mut saw_norm = false;
        for layer in &dst.backbone {
            if let Layer::Norm(n) = layer {
                saw_norm = true;
                assert!(n.running_mean.iter().all(|&v| v == 0.25));
                assert!(n.running_var.iter().all(|&v| v == 4.0));
            }
        }
        assert!(saw_norm);
    }

    #[test]
    fn corruption_and_truncation_are_detected_and_leave_net_untouched() {
        let src = tiny_net(5);
        let bytes = checkpoint_bytes(&src);
        let mut dst = tiny_net(9);
        let before = dst.clone();

        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            load_checkpoint_bytes(&mut dst, &flipped),
            Err(CheckpointError::BadChecksum)
        ));
        assert_eq!(dst, before);

        assert!(matches!(
            load_checkpoint_bytes(&mut dst, &bytes[..bytes.len() / 2]),
            Err(CheckpointError::Truncated) | Err(CheckpointError::BadChecksum)
        ));
        assert_eq!(dst, before);

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            load_checkpoint_bytes(&mut dst, &wrong_magic),
            Err(CheckpointError::BadMagic)
        ));
        assert_eq!(dst, before);
    }

    #[test]
    fn wrong_architecture_is_rejected() {
        let src = tiny_net(2);
        let bytes = checkpoint_bytes(&src);
        let mut other =
            CnvConfig::scaled(2).build_early_exit(10, &ExitsConfig::paper_default(), 1);
        assert!(matches!(
            load_checkpoint_bytes(&mut other, &bytes),
            Err(CheckpointError::CountMismatch { .. }) | Err(CheckpointError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn atomic_write_then_load_roundtrips() {
        let dir = std::env::temp_dir().join(format!("adapex-ckpt-{}", std::process::id()));
        let path = dir.join("net.ckpt");
        let src = tiny_net(4);
        save_checkpoint(&src, &path).unwrap();
        let mut dst = tiny_net(8);
        load_checkpoint(&mut dst, &path).unwrap();
        assert_eq!(network_tensors(&src), network_tensors(&dst));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
