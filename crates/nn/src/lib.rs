//! Quantization-aware CNN training and inference with early exits.
//!
//! This crate is the reproduction's stand-in for the Brevitas/PyTorch
//! stack the AdaPEx paper builds on: a small, from-scratch CPU engine
//! that can
//!
//! * define CNV-style quantized CNNs ([`cnv`]) with 2-bit fake-quantized
//!   weights and activations ([`quant`], straight-through estimator),
//! * attach **early-exit branches** anywhere along the backbone
//!   ([`EarlyExitNetwork`], [`ExitsConfig`]) and train all exits jointly
//!   with the BranchyNet weighted loss (paper Sec. IV-A1),
//! * evaluate early-exit inference under a **confidence threshold**
//!   ([`eval`]), reporting per-exit accuracies and exit-taken fractions.
//!
//! The numeric kernels live in [`adapex_tensor`]; synthetic datasets in
//! [`adapex_dataset`].
//!
//! # Example
//!
//! ```
//! use adapex_dataset::{DatasetKind, SyntheticConfig};
//! use adapex_nn::cnv::{CnvConfig, ExitsConfig};
//! use adapex_nn::train::{Trainer, TrainConfig};
//!
//! let data = SyntheticConfig::new(DatasetKind::Cifar10Like)
//!     .with_sizes(60, 20)
//!     .generate();
//! let mut net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 1);
//! let trainer = Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::fast() });
//! trainer.fit(&mut net, &data, 42);
//! // One inference pass; thresholds and final-exit accuracy are then
//! // cheap post-processing on the ExitEvaluation.
//! let eval = adapex_nn::eval::evaluate_exits(&mut net, &data.test);
//! let summary = eval.summary_at(0.5);
//! assert!(summary.overall_accuracy >= 0.0 && summary.overall_accuracy <= 1.0);
//! assert!(eval.final_accuracy() >= 0.0);
//! ```

pub mod checkpoint;
pub mod cnv;
pub mod eval;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optim;
pub mod quant;
pub mod serve;
pub mod train;

pub use cnv::{CnvConfig, ExitsConfig};
pub use network::{EarlyExitNetwork, ExitBranch, LayerInfo};
