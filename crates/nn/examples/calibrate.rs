//! Internal calibration tool: trains the reproduction-scale CNV on both
//! synthetic datasets and prints accuracy per exit — used to tune dataset
//! noise so accuracy bands land near the paper's (CIFAR-10 ~89 %, GTSRB
//! ~70 %). Run with `cargo run --release -p adapex-nn --example calibrate`.

use adapex_dataset::{DatasetKind, SyntheticConfig};
use adapex_nn::cnv::{CnvConfig, ExitsConfig};
use adapex_nn::eval::evaluate_exits;
use adapex_nn::train::{TrainConfig, Trainer};
use std::time::Instant;

fn main() {
    let width: usize = std::env::var("W").ok().and_then(|v| v.parse().ok()).unwrap_or(16);
    let epochs: usize = std::env::var("E").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
    let train_n: usize = std::env::var("N").ok().and_then(|v| v.parse().ok()).unwrap_or(2000);
    for kind in [DatasetKind::Cifar10Like, DatasetKind::GtsrbLike] {
        // GTSRB has 4.3x more classes; keep samples-per-class comparable.
        let scale = kind.num_classes() as f64 / 10.0;
        let n = (train_n as f64 * scale) as usize;
        let extra = if kind == DatasetKind::GtsrbLike { 4 } else { 0 };
        let data = SyntheticConfig::new(kind).with_sizes(n, 500).generate();
        let mut net = CnvConfig::scaled(width).build_early_exit(
            kind.num_classes(),
            &ExitsConfig::paper_default(),
            42,
        );
        let cfg = TrainConfig {
            epochs: epochs + extra,
            ..TrainConfig::repro_default()
        };
        let t0 = Instant::now();
        let hist = Trainer::new(cfg).fit(&mut net, &data, 7);
        let train_time = t0.elapsed();
        let eval = evaluate_exits(&mut net, &data.test);
        println!(
            "{kind}: train {train_time:.1?} loss {:?} train-acc {:.3}",
            hist.epoch_losses, hist.final_train_accuracy
        );
        for e in 0..eval.num_exits() {
            println!("  exit {e}: standalone acc {:.3}", eval.exit_accuracy(e));
        }
        for ct in [0.05f32, 0.5, 0.95] {
            let r = eval.at_threshold(ct);
            println!(
                "  CT {:>4.0}%: acc {:.3} fractions {:?}",
                ct * 100.0,
                r.accuracy,
                r.exit_fractions.iter().map(|f| (f * 100.0).round()).collect::<Vec<_>>()
            );
        }
    }
}
