//! Anchor crate for the workspace-level integration tests living in the
//! repository root's `tests/` directory (see `Cargo.toml`'s `[[test]]`
//! entries). The crate itself exports nothing.
