//! `adapex-cli` — command-line front-end for the AdaPEx reproduction.
//!
//! ```text
//! adapex-cli generate --dataset cifar10 --profile fast --out artifacts.json
//! adapex-cli inspect  --artifacts artifacts.json
//! adapex-cli simulate --artifacts artifacts.json --system adapex --reps 20
//! adapex-cli trace    --artifacts artifacts.json --seed 21 --ips-per-camera 50
//! adapex-cli synth    --width 8 --rate 0.5 --prune-exits
//! ```

mod args;

use adapex::baselines::{manager_for, System};
use adapex::generator::{Artifacts, GeneratorConfig, LibraryGenerator};
use adapex::runtime::{MitigationConfig, RuntimeManager};
use adapex_dataset::DatasetKind;
use adapex_edge::{
    mean_of, EdgeSimulation, FaultPlan, Fleet, FleetConfig, FleetOverrides, PlacementPolicy,
    Scenario, ScenarioFile, SimConfig, SimResult, WorkloadConfig, WorkloadSpec,
};
use adapex_tensor::parallel::num_threads;
use args::Args;
use std::error::Error;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_deref() {
        Some("generate") => cmd_generate(&args),
        Some("inspect") => cmd_inspect(&args),
        Some("report") => cmd_report(&args),
        Some("serve") => cmd_serve(&args),
        Some("simulate") => cmd_simulate(&args),
        Some("trace") => cmd_trace(&args),
        Some("synth") => cmd_synth(&args),
        _ => {
            println!("{USAGE}");
            Ok(())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
adapex-cli — AdaPEx (DATE 2023) reproduction toolkit

USAGE:
  adapex-cli generate --dataset cifar10|gtsrb [--profile fast|repro] --out FILE
                      [--jobs N]   (0 = auto; results are identical for any N)
                      [--cache-dir DIR] [--no-cache]
                      (DIR defaults to $ADAPEX_CACHE when set; caching is off
                       otherwise. Cache hits are byte-identical to recompute.)
  adapex-cli inspect  --artifacts FILE [--prune-exits]
  adapex-cli report   --artifacts FILE [--out FILE.md]
  adapex-cli simulate --artifacts FILE [--system adapex|pr-only|ct-only|finn|all]
                      [--reps N] [--ips-per-camera F] [--seed N]
                      [--scenario steady|ramp-up|burst|diurnal|SCENARIO.json]
                      [--workload WORKLOAD.json]
                      [--faults PLAN.json] [--no-mitigation]
                      [--servers N] [--cameras N] [--jobs N]
                      (--faults replays a deterministic fault plan —
                       reconfiguration aborts/overruns, camera dropouts,
                       stale-frame floods, accuracy dips. Defaults to
                       $ADAPEX_FAULT_PLAN when set. Mitigation —
                       hysteresis, cooldown, retry backoff — is enabled
                       with faults unless --no-mitigation.
                       --scenario also accepts a scenario *file* (see
                       tests/golden/scenarios/) bundling a workload
                       spec, fault plan, seed, and sim/fleet/serve
                       overrides; --workload takes a bare workload-spec
                       JSON. Explicit flags (--seed, --faults,
                       --cameras, --ips-per-camera, --servers) override
                       the file. --servers N > 1 simulates a fleet of N
                       edge servers with --cameras streams each, sharded
                       over --jobs cores; 0 = auto. Results are
                       byte-identical for any --jobs.)
  adapex-cli trace    --artifacts FILE [--seed N] [--ips-per-camera F]
                      [--scenario steady|ramp-up|burst|diurnal|SCENARIO.json]
                      [--workload WORKLOAD.json]
                      [--faults PLAN.json] [--no-mitigation]
                      [--servers N] [--cameras N] [--jobs N]
                      (--servers N > 1 prints one row per server instead
                       of the single-server time trace)
  adapex-cli serve    [--artifacts FILE] [--slo SPEC] [--max-batch N]
                      [--batch-deadline-us N] [--workers N] [--fifo]
                      [--pattern steady|burst|ramp] [--rate F]
                      [--duration S] [--seed N] [--faults PLAN.json]
                      [--scenario SCENARIO.json] [--workload WORKLOAD.json]
                      (SPEC is `name:budget_us:priority[:capacity],...`,
                       default `gold:20000:2:64,best-effort:100000:1:256`.
                       Without --artifacts, a synthetic service model
                       serves generated --pattern arrivals at --rate
                       requests/s in virtual time. With --artifacts, the
                       runtime manager serves the surveillance workload
                       on the event simulator: monitor decisions retune
                       the confidence threshold or reconfigure the FPGA
                       mid-serve, and --faults composes camera dropouts
                       and reconfig aborts into the run. --scenario and
                       --workload files (with --artifacts) replace the
                       synthetic camera workload with a trace-driven
                       one. --fifo swaps the early-exit-aware admission
                       for plain FIFO.)
  adapex-cli synth    [--width N] [--rate F] [--prune-exits] [--classes N]
                      [--target-cycles N]";

fn dataset_of(name: &str) -> Result<DatasetKind, Box<dyn Error>> {
    match name {
        "cifar10" => Ok(DatasetKind::Cifar10Like),
        "gtsrb" => Ok(DatasetKind::GtsrbLike),
        other => Err(format!("unknown dataset `{other}` (cifar10|gtsrb)").into()),
    }
}

fn cmd_generate(args: &Args) -> Result<(), Box<dyn Error>> {
    let kind = dataset_of(args.get_or("dataset", "cifar10".to_string())?.as_str())?;
    let out = args.require("out")?;
    let mut cfg = match args.get_or("profile", "fast".to_string())?.as_str() {
        "repro" => GeneratorConfig::repro_default(kind),
        "fast" => GeneratorConfig::fast(kind),
        other => return Err(format!("unknown profile `{other}` (fast|repro)").into()),
    };
    cfg.verbose = true;
    cfg.jobs = args.get_or("jobs", 0usize)?;
    // --cache-dir wins over $ADAPEX_CACHE; --no-cache disables both.
    let cache_dir = match args.get("cache-dir") {
        Some(dir) => Some(dir.to_string()),
        None => std::env::var("ADAPEX_CACHE").ok().filter(|v| !v.is_empty()),
    };
    if let Some(dir) = cache_dir.filter(|_| !args.flag("no-cache")) {
        cfg = cfg.with_cache_dir(dir);
    }
    let cached = cfg.cache_dir.is_some();
    let (artifacts, stats) = LibraryGenerator::new(cfg).generate_with_stats();
    artifacts.save_json(out)?;
    println!(
        "wrote {out}: {} AdaPEx entries, {} PR-Only entries, reference accuracy {:.1}%",
        artifacts.adapex.len(),
        artifacts.pr_only.len(),
        artifacts.reference_accuracy * 100.0
    );
    if cached {
        println!(
            "cache: {} hits / {} misses (entries {}/{}, checkpoints {}/{}, evals {}/{})",
            stats.hits(),
            stats.misses(),
            stats.entry_hits,
            stats.entry_misses,
            stats.checkpoint_hits,
            stats.checkpoint_misses,
            stats.eval_hits,
            stats.eval_misses,
        );
    }
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), Box<dyn Error>> {
    let artifacts = Artifacts::load_json(args.require("artifacts")?)?;
    println!(
        "dataset {} | reference accuracy {:.1}% | reconfig {:.0} ms",
        artifacts.kind,
        artifacts.reference_accuracy * 100.0,
        artifacts.reconfig_time_ms
    );
    println!(
        "{:>4} {:>8} {:>11} {:>9} {:>9} {:>10} {:>8} {:>8}",
        "id", "P.R.[%]", "exits", "mean-acc", "best-acc", "IPS range", "BRAM", "LUT"
    );
    for e in &artifacts.adapex.entries {
        if args.flag("prune-exits") != e.prune_exits {
            continue;
        }
        let (lo, hi) = e.points.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), p| {
            (lo.min(p.ips), hi.max(p.ips))
        });
        let best = e
            .points
            .iter()
            .map(|p| p.accuracy)
            .fold(0.0f64, f64::max);
        println!(
            "{:>4} {:>8.0} {:>11} {:>9.3} {:>9.3} {:>5.0}-{:<4.0} {:>8} {:>8}",
            e.id,
            e.pruning_rate * 100.0,
            if e.prune_exits { "pruned" } else { "not-pruned" },
            e.mean_exit_accuracy,
            best,
            lo,
            hi,
            e.resources.bram36,
            e.resources.lut,
        );
    }
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), Box<dyn Error>> {
    let artifacts = Artifacts::load_json(args.require("artifacts")?)?;
    let md = adapex::report::render_markdown(&artifacts);
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &md)?;
            println!("wrote {path}");
        }
        None => print!("{md}"),
    }
    Ok(())
}

fn systems_of(name: &str) -> Result<Vec<System>, Box<dyn Error>> {
    Ok(match name {
        "adapex" => vec![System::AdaPEx],
        "pr-only" => vec![System::PrOnly],
        "ct-only" => vec![System::CtOnly],
        "finn" => vec![System::Finn],
        "all" => System::all().to_vec(),
        other => return Err(format!("unknown system `{other}`").into()),
    })
}

fn sim_config(args: &Args, reconfig_ms: f64) -> Result<SimConfig, Box<dyn Error>> {
    let defaults = WorkloadConfig::paper_default();
    let ips = args.get_or("ips-per-camera", 30.0f64)?;
    let cameras = args.get_or("cameras", defaults.cameras)?;
    Ok(SimConfig {
        workload: WorkloadConfig {
            ips_per_camera: ips,
            cameras,
            ..defaults
        },
        ..SimConfig::paper_default(reconfig_ms)
    })
}

/// `--jobs N` with `0` (the default) meaning one worker per core.
fn jobs_of(args: &Args) -> Result<usize, Box<dyn Error>> {
    Ok(match args.get_or("jobs", 0usize)? {
        0 => num_threads(),
        n => n,
    })
}

/// Resolves the fault plan: `--faults FILE` wins, then
/// `$ADAPEX_FAULT_PLAN`, then the empty (no-fault) plan.
fn fault_plan(args: &Args) -> Result<FaultPlan, Box<dyn Error>> {
    match args.get("faults") {
        Some(path) => Ok(FaultPlan::load_json(path)?),
        None => Ok(FaultPlan::from_env()?.unwrap_or_else(FaultPlan::none)),
    }
}

/// What `--scenario VALUE` named: one of the built-in shaped traces, or
/// a scenario *file* bundling workload + faults + overrides.
enum ScenarioArg {
    Shaped(Scenario),
    File(Box<ScenarioFile>),
}

/// Parses `--scenario`, if given. Shaped ids win; anything else is
/// loaded as a scenario file.
fn scenario_arg(args: &Args) -> Result<Option<ScenarioArg>, Box<dyn Error>> {
    let Some(value) = args.get("scenario") else {
        return Ok(None);
    };
    if let Some(shaped) = Scenario::from_id(value) {
        return Ok(Some(ScenarioArg::Shaped(shaped)));
    }
    if std::path::Path::new(value).is_file() {
        return Ok(Some(ScenarioArg::File(Box::new(ScenarioFile::load_json(
            value,
        )?))));
    }
    Err(format!(
        "unknown scenario `{value}`: not a shaped id (steady|ramp-up|burst|diurnal) \
         and no such file"
    )
    .into())
}

/// Parses `--workload FILE` (a bare workload-spec JSON), if given.
fn workload_arg(args: &Args) -> Result<Option<WorkloadSpec>, Box<dyn Error>> {
    match args.get("workload") {
        Some(path) => Ok(Some(WorkloadSpec::load_json(path)?)),
        None => Ok(None),
    }
}

/// Applies `--ips-per-camera` / `--cameras` only when given, so file
/// scenarios keep their own workload shape under the default flags.
fn apply_workload_flags(args: &Args, workload: &mut WorkloadConfig) -> Result<(), Box<dyn Error>> {
    if let Some(v) = args.get("ips-per-camera") {
        workload.ips_per_camera = v.parse()?;
    }
    if let Some(v) = args.get("cameras") {
        workload.cameras = v.parse()?;
    }
    Ok(())
}

/// Where the arrival process for `simulate`/`trace` comes from.
enum WorkloadSource {
    /// The paper's built-in ±deviation synthetic generator.
    Synthetic,
    /// A built-in shaped trace (`--scenario steady|ramp-up|...`).
    Shaped(Scenario),
    /// A workload spec from `--workload FILE` or a scenario file.
    Spec(WorkloadSpec),
}

/// Everything `simulate`/`trace` need, resolved from flags plus an
/// optional scenario file. Explicit flags always win over the file.
struct RunSetup {
    sim: SimConfig,
    source: WorkloadSource,
    plan: FaultPlan,
    seed: u64,
    jobs: usize,
    servers: usize,
    fleet: Option<FleetOverrides>,
    banner: Option<String>,
}

fn resolve_run(
    args: &Args,
    reconfig_ms: f64,
    default_seed: u64,
) -> Result<RunSetup, Box<dyn Error>> {
    let scenario = scenario_arg(args)?;
    let workload = workload_arg(args)?;
    if scenario.is_some() && workload.is_some() {
        return Err(
            "--scenario and --workload are mutually exclusive (a scenario file \
             carries its own workload)"
                .into(),
        );
    }
    let jobs = jobs_of(args)?;
    if let Some(ScenarioArg::File(file)) = &scenario {
        let mut sim = file.sim_config(reconfig_ms);
        if let Some(f) = &file.fleet {
            sim.workload.cameras = f.cameras_per_server;
        }
        apply_workload_flags(args, &mut sim.workload)?;
        let spec = file.workload.with_config(sim.workload);
        let plan = match args.get("faults") {
            Some(path) => FaultPlan::load_json(path)?,
            None => file.faults.clone(),
        };
        let servers = args.get_or("servers", file.fleet.map_or(1, |f| f.servers))?;
        return Ok(RunSetup {
            banner: Some(format!(
                "scenario {} (seed {}): {}",
                file.name, file.seed, file.description
            )),
            sim,
            source: WorkloadSource::Spec(spec),
            plan,
            seed: args.get_or("seed", file.seed)?,
            jobs,
            servers,
            fleet: file.fleet,
        });
    }
    let sim = match &workload {
        Some(spec) => {
            let mut sim = SimConfig::paper_default(reconfig_ms);
            sim.workload = *spec.config();
            apply_workload_flags(args, &mut sim.workload)?;
            sim
        }
        None => sim_config(args, reconfig_ms)?,
    };
    let source = match (scenario, workload) {
        (Some(ScenarioArg::Shaped(s)), None) => WorkloadSource::Shaped(s),
        (None, Some(spec)) => WorkloadSource::Spec(spec.with_config(sim.workload)),
        (None, None) => WorkloadSource::Synthetic,
        _ => unreachable!("file and exclusivity cases handled above"),
    };
    Ok(RunSetup {
        banner: None,
        sim,
        source,
        plan: fault_plan(args)?,
        seed: args.get_or("seed", default_seed)?,
        jobs,
        servers: args.get_or("servers", 1usize)?,
        fleet: None,
    })
}

/// Builds the fleet for `--servers N` (N > 1): each server gets the
/// resolved per-server stream count and the shared simulation template.
fn fleet_for(run: &RunSetup) -> Result<Fleet, Box<dyn Error>> {
    if matches!(run.source, WorkloadSource::Shaped(_)) {
        return Err("--scenario applies to single-server runs; fleets draw \
                    per-camera workloads from the seed (use a scenario file \
                    for fleet workloads)"
            .into());
    }
    let (camera_spread, placement) = run
        .fleet
        .map_or((0.2, PlacementPolicy::LeastLoaded), |f| {
            (f.camera_spread, f.placement)
        });
    Ok(Fleet::new(FleetConfig {
        servers: run.servers,
        cameras_per_server: run.sim.workload.cameras,
        camera_spread,
        placement,
        sim: run.sim.clone(),
    }))
}

/// Enables graceful-degradation mitigation when a fault plan is active,
/// unless `--no-mitigation` asks for the paper's bare manager.
fn apply_mitigation(manager: &mut RuntimeManager, plan: &FaultPlan, args: &Args) {
    if !plan.is_none() && !args.flag("no-mitigation") {
        manager.set_mitigation(MitigationConfig::recommended());
    }
}

fn print_fault_summary(results: &[SimResult]) {
    let sum = |f: &dyn Fn(&SimResult) -> usize| -> usize { results.iter().map(f).sum() };
    println!(
        "faults: {} failed reconfigs ({} retries), {} overruns, {} frames dropped at source, \
         {} flood arrivals, {} stale discards, {:.1} s degraded",
        sum(&|r| r.faults.failed_reconfigs),
        sum(&|r| r.faults.reconfig_retries),
        sum(&|r| r.faults.overrun_reconfigs),
        sum(&|r| r.faults.dropped_by_fault),
        sum(&|r| r.faults.flood_arrivals),
        sum(&|r| r.faults.stale_discarded),
        results.iter().map(|r| r.faults.time_degraded_s).sum::<f64>(),
    );
}

/// Runs one fleet sweep honoring the resolved workload source.
fn run_fleet(
    fleet: &Fleet,
    manager: &RuntimeManager,
    run: &RunSetup,
) -> adapex_edge::FleetResult {
    match &run.source {
        WorkloadSource::Spec(spec) => {
            fleet.run_jobs_with_workload(manager, spec, run.seed, run.jobs, &run.plan)
        }
        _ => fleet.run_jobs_with_faults(manager, run.seed, run.jobs, &run.plan),
    }
}

fn cmd_simulate(args: &Args) -> Result<(), Box<dyn Error>> {
    let artifacts = Artifacts::load_json(args.require("artifacts")?)?;
    let reps = args.get_or("reps", 20usize)?;
    let run = resolve_run(args, artifacts.reconfig_time_ms, 0xDA7E)?;
    if let Some(banner) = &run.banner {
        println!("{banner}");
    }
    if run.servers > 1 {
        return simulate_fleet(args, &artifacts, &run);
    }
    let sim = EdgeSimulation::new(run.sim.clone());
    println!(
        "{:>8} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "System", "Loss[%]", "Acc[%]", "QoE[%]", "Power[W]", "Lat[ms]", "Reconfigs"
    );
    let mut all_results = Vec::new();
    for system in systems_of(args.get_or("system", "all".to_string())?.as_str())? {
        let mut manager = manager_for(system, &artifacts, 0.10);
        apply_mitigation(&mut manager, &run.plan, args);
        let results = match &run.source {
            WorkloadSource::Shaped(s) => {
                let trace = s.trace(sim.config().workload);
                sim.run_many_shaped_jobs_with_faults(
                    &manager, &trace, reps, run.seed, run.jobs, &run.plan,
                )
            }
            WorkloadSource::Spec(spec) => sim.run_many_workload_jobs_with_faults(
                &manager, spec, reps, run.seed, run.jobs, &run.plan,
            ),
            WorkloadSource::Synthetic => {
                sim.run_many_jobs_with_faults(&manager, reps, run.seed, run.jobs, &run.plan)
            }
        };
        println!(
            "{:>8} {:>9.2} {:>8.1} {:>8.1} {:>9.2} {:>9.2} {:>9.1}",
            system.label(),
            mean_of(&results, |r| r.inference_loss_pct()),
            mean_of(&results, |r| r.mean_accuracy * 100.0),
            mean_of(&results, |r| r.qoe() * 100.0),
            mean_of(&results, |r| r.mean_power_w),
            mean_of(&results, |r| r.mean_latency_ms),
            mean_of(&results, |r| r.reconfig_count as f64),
        );
        all_results.extend(results);
    }
    if !run.plan.is_none() {
        print_fault_summary(&all_results);
    }
    Ok(())
}

/// Fleet-mode `simulate`: one row per system with fleet-level
/// aggregates over `servers × cameras` streams.
fn simulate_fleet(args: &Args, artifacts: &Artifacts, run: &RunSetup) -> Result<(), Box<dyn Error>> {
    let fleet = fleet_for(run)?;
    println!(
        "fleet: {} servers x {} cameras = {} streams, {} jobs",
        run.servers,
        fleet.config().cameras_per_server,
        fleet.config().streams(),
        run.jobs
    );
    println!(
        "{:>8} {:>9} {:>8} {:>8} {:>9} {:>10} {:>9}",
        "System", "Loss[%]", "Acc[%]", "QoE[%]", "Power[W]", "Energy[J]", "Reconfigs"
    );
    for system in systems_of(args.get_or("system", "all".to_string())?.as_str())? {
        let mut manager = manager_for(system, artifacts, 0.10);
        apply_mitigation(&mut manager, &run.plan, args);
        let result = run_fleet(&fleet, &manager, run);
        let s = &result.summary;
        println!(
            "{:>8} {:>9.2} {:>8.1} {:>8.1} {:>9.2} {:>10.1} {:>9}",
            system.label(),
            s.inference_loss_pct,
            s.mean_accuracy * 100.0,
            s.qoe * 100.0,
            s.mean_power_w,
            s.energy_j,
            s.reconfig_count,
        );
        if !run.plan.is_none() {
            print_fault_summary(&result.servers);
        }
    }
    Ok(())
}

/// Fleet-mode `trace`: one row per server instead of the time trace.
fn trace_fleet(args: &Args, artifacts: &Artifacts, run: &RunSetup) -> Result<(), Box<dyn Error>> {
    let fleet = fleet_for(run)?;
    let mut manager = manager_for(System::AdaPEx, artifacts, 0.10);
    apply_mitigation(&mut manager, &run.plan, args);
    let result = run_fleet(&fleet, &manager, run);
    let placement = fleet.placement(run.seed);
    println!(
        "{:>6} {:>7} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "server", "cams", "offered", "Loss[%]", "Acc[%]", "QoE[%]", "Reconfigs"
    );
    for (i, (r, a)) in result.servers.iter().zip(&placement).enumerate() {
        println!(
            "{:>6} {:>7} {:>9} {:>9.2} {:>8.1} {:>8.1} {:>9}",
            i,
            a.cameras.len(),
            r.offered,
            r.inference_loss_pct(),
            r.mean_accuracy * 100.0,
            r.qoe() * 100.0,
            r.reconfig_count,
        );
    }
    let s = &result.summary;
    println!(
        "fleet: {} streams, {:.2}% loss, QoE {:.1}%, {:.1} J, {} reconfigurations \
         ({} events over {} ticks)",
        s.streams,
        s.inference_loss_pct,
        s.qoe * 100.0,
        s.energy_j,
        s.reconfig_count,
        s.events,
        s.ticks,
    );
    if !run.plan.is_none() {
        print_fault_summary(&result.servers);
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), Box<dyn Error>> {
    let artifacts = Artifacts::load_json(args.require("artifacts")?)?;
    let run = resolve_run(args, artifacts.reconfig_time_ms, 21)?;
    if let Some(banner) = &run.banner {
        println!("{banner}");
    }
    if run.servers > 1 {
        return trace_fleet(args, &artifacts, &run);
    }
    let mut manager = manager_for(System::AdaPEx, &artifacts, 0.10);
    apply_mitigation(&mut manager, &run.plan, args);
    let sim = EdgeSimulation::new(run.sim.clone());
    let result = match &run.source {
        WorkloadSource::Shaped(s) => {
            let trace = s.trace(sim.config().workload);
            sim.run_with_shaped_trace_and_faults(&mut manager, &trace, run.seed, &run.plan)
        }
        WorkloadSource::Spec(spec) => {
            sim.run_with_workload_and_faults(&mut manager, spec, run.seed, &run.plan)
        }
        WorkloadSource::Synthetic => sim.run_with_faults(&mut manager, run.seed, &run.plan),
    };
    println!(
        "{:>5} {:>8} {:>8} {:>8} {:>8} {:>6} {:>5} {:>8}",
        "t[s]", "IPS", "P.R.[%]", "C.T.[%]", "Acc[%]", "queue", "deg", "backoff"
    );
    for s in &result.trace {
        println!(
            "{:>5.0} {:>8.0} {:>8.0} {:>8.0} {:>8.1} {:>6} {:>5} {:>8}",
            s.t,
            s.workload_ips,
            s.pruning_rate * 100.0,
            s.confidence_threshold * 100.0,
            s.accuracy * 100.0,
            s.queue_len,
            if s.degraded { "*" } else { "" },
            s.backoff_remaining,
        );
    }
    println!(
        "{} reconfigurations, {} CT moves, {:.2}% loss, QoE {:.1}%",
        result.reconfig_count,
        result.ct_change_count,
        result.inference_loss_pct(),
        result.qoe() * 100.0
    );
    if !run.plan.is_none() {
        print_fault_summary(std::slice::from_ref(&result));
    }
    Ok(())
}

fn cmd_synth(args: &Args) -> Result<(), Box<dyn Error>> {
    use adapex::generator::derive_constraints;
    use adapex_nn::cnv::{CnvConfig, ExitsConfig};
    use adapex_prune::{PruneConfig, Pruner};
    use finn_dataflow::{
        assignments_from_fractions, compile, simulate_stream, FoldingConfig, FpgaDevice, ModelIr,
    };

    let width = args.get_or("width", 8usize)?;
    let rate = args.get_or("rate", 0.0f64)?;
    let classes = args.get_or("classes", 10usize)?;
    let target = args.get_or("target-cycles", 235_000u64)?;
    let net = CnvConfig::scaled(width).build_early_exit(classes, &ExitsConfig::paper_default(), 42);
    let ir = ModelIr::from_summary(&net.summarize());
    let folding = FoldingConfig::balanced(&ir, target, 2.0);
    let net = if rate > 0.0 {
        let constraints = derive_constraints(&net, &folding);
        let (pruned, report) = Pruner::new(PruneConfig {
            rate,
            prune_exits: args.flag("prune-exits"),
        })
        .prune(&net, &constraints);
        println!(
            "pruned: requested {:.0}% -> achieved {:.1}%",
            rate * 100.0,
            report.overall_rate() * 100.0
        );
        pruned
    } else {
        net
    };
    let ir = ModelIr::from_summary(&net.summarize());
    let acc = compile(&ir, &folding, &FpgaDevice::zcu104(), 100.0)?;
    println!("{}", acc.report().summary());
    println!(
        "latency to exits [ms]: {:?}",
        acc.report()
            .latency_to_exit_ms
            .iter()
            .map(|l| format!("{l:.3}"))
            .collect::<Vec<_>>()
    );
    // Cross-check the analytical throughput with the stream simulator.
    let fractions = vec![0.6, 0.2, 0.2];
    let sim = simulate_stream(acc.graph(), &assignments_from_fractions(&fractions, 300));
    let analytical = acc.performance(&fractions);
    println!(
        "stream-sim check @ mix {fractions:?}: simulated {:.0} IPS vs analytical {:.0} IPS",
        sim.throughput_ips(100.0),
        analytical.ips
    );
    Ok(())
}

/// Parses an SLO spec: `name:budget_us:priority[:capacity]` groups
/// separated by commas.
fn parse_slo(spec: &str) -> Result<Vec<adapex::serve::SloClass>, Box<dyn Error>> {
    use adapex::serve::SloClass;
    let mut classes = Vec::new();
    for group in spec.split(',') {
        let parts: Vec<&str> = group.split(':').collect();
        if parts.len() < 3 || parts.len() > 4 {
            return Err(format!(
                "bad SLO group `{group}` (want name:budget_us:priority[:capacity])"
            )
            .into());
        }
        let mut class = SloClass::new(parts[0], parts[1].parse()?);
        class.priority = parts[2].parse()?;
        if let Some(cap) = parts.get(3) {
            class.queue_capacity = cap.parse()?;
        }
        classes.push(class);
    }
    if classes.is_empty() {
        return Err("SLO spec names no classes".into());
    }
    Ok(classes)
}

fn print_serve_report(config: &adapex::serve::ServeConfig, r: &adapex::serve::ServeReport) {
    println!(
        "offered {}  completed {} ({} in budget)  dropped {}  shed {}  \
         batches {} (fill {:.1})  deferrals {}",
        r.offered,
        r.completed,
        r.completed_in_budget,
        r.dropped_full,
        r.shed_infeasible,
        r.batches,
        r.mean_batch_fill().unwrap_or(0.0),
        r.deferrals
    );
    if let (Some(tp), Some(gp)) = (r.throughput_rps(), r.goodput_rps()) {
        println!("throughput {tp:.0} rps  goodput {gp:.0} rps");
    }
    println!(
        "{:>12} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Class", "Budget[ms]", "Done", "Dropped", "Shed", "p50[ms]", "p99[ms]"
    );
    for (c, s) in r.per_class.iter().enumerate() {
        let ms = |v: Option<u64>| {
            v.map(|u| format!("{:.1}", u as f64 / 1_000.0))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:>12} {:>10.1} {:>9} {:>9} {:>9} {:>9} {:>9}",
            config.classes[c].name,
            config.classes[c].budget_us as f64 / 1_000.0,
            s.completed,
            s.dropped_full,
            s.shed_infeasible,
            ms(s.p50_us()),
            ms(s.p99_us()),
        );
    }
}

fn cmd_serve(args: &Args) -> Result<(), Box<dyn Error>> {
    use adapex::serve::{
        generate_arrivals, AdmissionPolicy, ArrivalPattern, PointServiceModel, ServeConfig,
        ServeSim,
    };
    use adapex_edge::{ServeScenario, ServeScenarioConfig};

    let mut config = ServeConfig::paper_default();
    if let Some(spec) = args.get("slo") {
        config.classes = parse_slo(spec)?;
    }
    config.max_batch = args.get_or("max-batch", config.max_batch)?;
    config.batch_deadline_us = args.get_or("batch-deadline-us", config.batch_deadline_us)?;
    config.workers = args.get_or("workers", config.workers)?;
    if args.flag("fifo") {
        config.admission = AdmissionPolicy::Fifo;
    }
    let seed = args.get_or("seed", 0x5E17Eu64)?;
    let duration = args.get_or("duration", 30.0f64)?;
    let weights = vec![1.0; config.classes.len()];

    if let Some(path) = args.get("artifacts") {
        let artifacts = Artifacts::load_json(path)?;
        let manager = manager_for(System::AdaPEx, &artifacts, 0.10);
        let mut cfg = ServeScenarioConfig::paper_default(artifacts.reconfig_time_ms);
        cfg.serve = config.clone();
        cfg.class_weights = weights;
        cfg.workload.duration_s = duration;
        cfg.faults = fault_plan(args)?;
        cfg.seed = seed;
        // A scenario/workload file replaces the synthetic camera
        // workload; explicit flags still win over the file afterwards.
        match (scenario_arg(args)?, workload_arg(args)?) {
            (Some(_), Some(_)) => {
                return Err("--scenario and --workload are mutually exclusive (a \
                            scenario file carries its own workload)"
                    .into());
            }
            (Some(ScenarioArg::Shaped(_)), None) => {
                return Err("serve takes a scenario *file*; shaped ids \
                            (steady|ramp-up|burst|diurnal) apply to simulate/trace"
                    .into());
            }
            (Some(ScenarioArg::File(file)), None) => {
                println!("scenario {} (seed {}): {}", file.name, file.seed, file.description);
                file.apply_serve(&mut cfg);
            }
            (None, Some(spec)) => {
                cfg.workload = *spec.config();
                cfg.workload_spec = Some(spec);
            }
            (None, None) => {}
        }
        if let Some(v) = args.get("seed") {
            cfg.seed = v.parse()?;
        }
        if let Some(v) = args.get("duration") {
            cfg.workload.duration_s = v.parse()?;
        }
        if let Some(p) = args.get("faults") {
            cfg.faults = FaultPlan::load_json(p)?;
        }
        if let Some(rate) = args.get("rate") {
            let rate: f64 = rate.parse()?;
            cfg.workload.ips_per_camera = rate / cfg.workload.cameras as f64;
        }
        let result = ServeScenario::run(&cfg, manager);
        println!(
            "decisions {}  ct-changes {}  reconfigs {} ({} aborted, {:.1} ms down)  \
             fault-dropped {}",
            result.decisions,
            result.ct_changes,
            result.reconfigs,
            result.reconfig_aborts,
            result.reconfig_downtime_us as f64 / 1_000.0,
            result.dropped_by_fault
        );
        print_serve_report(&config, &result.report);
    } else {
        if args.get("scenario").is_some() || args.get("workload").is_some() {
            return Err("--scenario/--workload require --artifacts (the file-driven \
                        workload drives the camera simulation, not the synthetic \
                        service model)"
                .into());
        }
        let rate = args.get_or("rate", 2_000.0f64)?;
        let pattern_name = args.get_or("pattern", "steady".to_string())?;
        let pattern = ArrivalPattern::parse(&pattern_name)
            .ok_or_else(|| format!("unknown pattern `{pattern_name}` (steady|burst|ramp)"))?;
        // Synthetic three-exit service model: 70 % retire at a 300 µs
        // first exit, 20 % at 600 µs, the rest at full depth.
        let model = PointServiceModel::new(&[0.7, 0.2, 0.1], vec![300, 600, 1_000], seed);
        let arrivals = generate_arrivals(pattern, rate, duration, &weights, seed);
        println!(
            "pattern {pattern_name} at {rate:.0} rps for {duration:.0}s: {} arrivals",
            arrivals.len()
        );
        let report = ServeSim::run(config.clone(), &model, &arrivals);
        print_serve_report(&config, &report);
    }
    Ok(())
}
