//! Minimal dependency-free argument parsing for the CLI.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` / `--flag` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Error raised for malformed command lines or bad option values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// Grammar: `[command] (--key value | --flag)*`. An option is a flag
    /// when it is followed by another `--option` or nothing.
    ///
    /// # Errors
    ///
    /// Returns an error on a stray positional argument after the command.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ParseArgsError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        if let Some(first) = iter.peek() {
            if !first.starts_with("--") {
                args.command = iter.next();
            }
        }
        while let Some(token) = iter.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(ParseArgsError(format!(
                    "unexpected positional argument `{token}`"
                )));
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    args.options.insert(key.to_string(), value);
                }
                _ => args.flags.push(key.to_string()),
            }
        }
        Ok(args)
    }

    /// String option by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a bare `--flag` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ParseArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("invalid value `{v}` for --{key}"))),
        }
    }

    /// Required option.
    ///
    /// # Errors
    ///
    /// Returns an error when the option is missing.
    pub fn require(&self, key: &str) -> Result<&str, ParseArgsError> {
        self.get(key)
            .ok_or_else(|| ParseArgsError(format!("missing required option --{key}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).expect("parses")
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["simulate", "--reps", "10", "--verbose", "--seed", "7"]);
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get("reps"), Some("10"));
        assert_eq!(a.get("seed"), Some("7"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn options_parse_with_defaults() {
        let a = parse(&["x", "--reps", "12"]);
        assert_eq!(a.get_or("reps", 100usize).expect("parses"), 12);
        assert_eq!(a.get_or("other", 5usize).expect("default"), 5);
        assert!(a.get_or::<usize>("reps", 0).is_ok());
        let bad = parse(&["x", "--reps", "ten"]);
        assert!(bad.get_or::<usize>("reps", 0).is_err());
    }

    #[test]
    fn trailing_flag_is_a_flag() {
        let a = parse(&["gen", "--fast"]);
        assert!(a.flag("fast"));
    }

    #[test]
    fn rejects_stray_positional() {
        let err = Args::parse(vec!["gen".into(), "oops".into()]).unwrap_err();
        assert!(err.to_string().contains("oops"));
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&["gen"]);
        assert!(a.require("out").is_err());
        let b = parse(&["gen", "--out", "x.json"]);
        assert_eq!(b.require("out").expect("present"), "x.json");
    }
}
