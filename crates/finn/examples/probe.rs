//! Internal calibration probe: compiles width-scaled CNVs (plain and
//! early-exit, several pruning-like widths) and prints synthesis numbers
//! so the power/performance constants can be sanity-checked against the
//! paper's bands (IPS ~ hundreds, power 1.1–1.4 W, latency a few ms).

use adapex_nn::cnv::{CnvConfig, ExitsConfig};
use finn_dataflow::{compile, FoldingConfig, FpgaDevice, ModelIr};

fn main() {
    let dev = FpgaDevice::zcu104();
    for width in [4usize, 6, 8] {
        for ee in [false, true] {
            let net = if ee {
                CnvConfig::scaled(width).build_early_exit(10, &ExitsConfig::paper_default(), 1)
            } else {
                CnvConfig::scaled(width).build(10, 1)
            };
            let ir = ModelIr::from_summary(&net.summarize());
            let folding = FoldingConfig::auto(&ir, 4, 4);
            match compile(&ir, &folding, &dev, 100.0) {
                Ok(acc) => {
                    println!("w={width} ee={ee}: {}", acc.report().summary());
                    if ee {
                        for fr in [[0.0, 0.0, 1.0], [0.5, 0.2, 0.3], [0.9, 0.05, 0.05]] {
                            let p = acc.performance(&fr);
                            println!(
                                "   fr {:?}: {:.0} IPS {:.2} ms {:.2} W {:.3} mJ",
                                fr, p.ips, p.avg_latency_ms, p.power_w, p.energy_per_inference_mj
                            );
                        }
                    }
                }
                Err(e) => println!("w={width} ee={ee}: ERROR {e}"),
            }
        }
    }
}
