//! Cycle-model ↔ engine cross-check: the MAC counts the `finn` IR
//! predicts must match the operations the int2 engine actually executes.
//!
//! The IR's `macs()` counts logical multiply-accumulates; the engine
//! counts both logical MACs and executed popcount word-operations. The
//! two MAC counters must agree **exactly** (per sample, stem conv
//! excluded — it consumes the raw image and stays on the f32 path). The
//! popcount counter relates to MACs by a documented constant factor:
//! each popcount word covers 64 packed codes across 4 plane streams, so
//! `popcount_ops * 16 >= macs`, with equality exactly when every
//! reduction depth is a multiple of 64 — the gap is the zero-padded tail
//! words, which the word-granularity model also counts, not a
//! divergence.

use std::sync::Mutex;

use adapex_nn::cnv::{CnvConfig, ExitsConfig};
use adapex_nn::layers::{Activation, QuantConv2d, QuantReLU};
use adapex_nn::quant::QuantSpec;
use adapex_tensor::conv::ConvGeometry;
use adapex_tensor::int2;
use adapex_tensor::rng::{normal_tensor, rng_from_seed};
use finn_dataflow::{IrOp, ModelIr};

/// Serializes the tests: they override the global engine/direct routing
/// and read global counters, so concurrent runs would cross-talk.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the popcount engine forced on (so the cross-check also
/// holds on the `ADAPEX_NO_INT2=1` CI leg) and the direct conv path
/// pinned to `direct` (so each cross-check covers one route regardless
/// of `ADAPEX_INT2_DIRECT`), restoring env routing after.
fn with_engine_forced_on<T>(direct: bool, f: impl FnOnce() -> T) -> T {
    let _guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            int2::override_enabled(None);
            int2::override_direct_enabled(None);
        }
    }
    let _restore = Restore;
    int2::override_enabled(Some(true));
    int2::override_direct_enabled(Some(direct));
    f()
}

/// One conv layer with a 2-bit-quantized input: engine counters ==
/// the IR node's predictions, hand-checkable (4×6 ch, 3×3 kernel,
/// 10×10 → 8×8; k = 36, so popcounts cover one padded word per output).
/// Checked on both conv routes — the direct gather materializes the
/// same `ceil(k/64)` plane words per output pixel the im2col route
/// packs, so the word-granularity model covers its windowed reads
/// exactly, with no extra formula.
#[test]
fn single_conv_counters_match_ir_prediction() {
    let mut conv = QuantConv2d::new(
        4,
        6,
        ConvGeometry::new(3),
        QuantSpec::signed(2),
        &mut rng_from_seed(5),
    );
    let batch = 3;
    let raw: Vec<f32> = (0..batch * 4 * 10 * 10)
        .map(|i| (i as f32 * 0.311).sin() * 2.0)
        .collect();
    let x = QuantReLU::a2().forward(&Activation::new(raw, batch, vec![4, 10, 10]), false);

    let node = IrOp::Conv {
        c_in: 4,
        c_out: 6,
        kernel: 3,
        stride: 1,
        padding: 0,
        in_hw: (10, 10),
        out_hw: (8, 8),
        weight_bits: 2,
        act_bits: Some(2),
        thresholds: true,
    };
    assert_eq!(node.macs(), 4 * 6 * 9 * 8 * 8);
    assert_eq!(node.int2_popcount_ops(), 4 * 6 * 8 * 8); // ceil(36/64) = 1 word
    for direct in [true, false] {
        let (macs, pops, calls) = with_engine_forced_on(direct, || {
            int2::reset_op_counters();
            conv.forward(&x, false);
            let (m, p) = int2::op_counters();
            (m, p, int2::direct_conv_calls())
        });
        assert_eq!(macs, batch as u64 * node.macs(), "direct={direct}");
        assert_eq!(pops, batch as u64 * node.int2_popcount_ops(), "direct={direct}");
        // Prove the intended route ran: one direct call per image when
        // forced on, none when forced off.
        assert_eq!(calls, if direct { batch as u64 } else { 0 });
        // Constant-factor relation: 64 codes / 4 plane streams per word
        // => up to 16 MACs per popcount op; k = 36 < 64 keeps it strict.
        assert!(pops * 16 >= macs);
    }
}

/// Full early-exit network: per-sample engine counters == the IR's
/// `int2_engine_profile` (all matrix nodes minus the stem), for both
/// MACs (exact) and popcount word-ops (exact, padding included on both
/// sides). A constant-factor drift in either the cycle model or the
/// engine instrumentation fails this immediately.
#[test]
fn full_network_engine_counters_match_ir_profile() {
    let mut net = CnvConfig::tiny().build_early_exit(43, &ExitsConfig::paper_default(), 9);
    let ir = ModelIr::from_summary(&net.summarize());
    let (macs_per_sample, pops_per_sample) = ir.int2_engine_profile();
    assert!(macs_per_sample > 0);
    assert!(pops_per_sample * 16 >= macs_per_sample);

    let batch = 5;
    let numel: usize = ir.input_dims.iter().product();
    let mut rng = rng_from_seed(21);
    let x = Activation::new(
        normal_tensor(&[batch * numel], 0.0, 1.0, &mut rng).into_vec(),
        batch,
        ir.input_dims.clone(),
    );

    for direct in [true, false] {
        let (macs, pops, calls) = with_engine_forced_on(direct, || {
            int2::reset_op_counters();
            net.forward(&x, false);
            let (m, p) = int2::op_counters();
            (m, p, int2::direct_conv_calls())
        });
        assert_eq!(
            macs,
            batch as u64 * macs_per_sample,
            "engine MACs diverge from the cycle model's matrix-node count (direct={direct})"
        );
        assert_eq!(
            pops,
            batch as u64 * pops_per_sample,
            "engine popcount ops diverge from the word-granularity model (direct={direct})"
        );
        // The direct route must actually engage on the non-stem convs
        // when forced on (the stem consumes the raw image and stays on
        // the f32 path, so it never contributes a call either way).
        if direct {
            assert!(calls > 0, "direct conv path never engaged");
        } else {
            assert_eq!(calls, 0, "direct conv path ran while forced off");
        }
    }
}
