//! Property-based tests of the hardware estimators: folding arithmetic,
//! monotonicity, and compilation determinism.

use adapex_nn::cnv::{CnvConfig, ExitsConfig};
use finn_dataflow::{compile, FoldingConfig, FpgaDevice, HlsModule, ModelIr};
use proptest::prelude::*;

fn mvtu(rows: usize, cols: usize, pixels: usize, pe: usize, simd: usize) -> HlsModule {
    HlsModule::Mvtu {
        rows,
        cols,
        pixels,
        pe,
        simd,
        weight_bits: 2,
        act_bits: 2,
        thresholds: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cycles never increase when parallelism grows.
    #[test]
    fn mvtu_cycles_monotone_in_parallelism(
        rows in 1usize..128,
        cols in 1usize..512,
        pixels in 1usize..1024,
        pe in 1usize..16,
        simd in 1usize..16,
    ) {
        let base = mvtu(rows, cols, pixels, pe, simd).cycles();
        let more_pe = mvtu(rows, cols, pixels, pe + 1, simd).cycles();
        let more_simd = mvtu(rows, cols, pixels, pe, simd + 1).cycles();
        prop_assert!(more_pe <= base);
        prop_assert!(more_simd <= base);
    }

    /// The folding arithmetic is exact when the divisors divide.
    #[test]
    fn mvtu_cycles_exact_for_even_folds(
        rows_factor in 1usize..8,
        cols_factor in 1usize..8,
        pe in 1usize..8,
        simd in 1usize..8,
        pixels in 1usize..256,
    ) {
        let rows = rows_factor * pe;
        let cols = cols_factor * simd;
        let cycles = mvtu(rows, cols, pixels, pe, simd).cycles();
        prop_assert_eq!(cycles, (pixels * rows_factor * cols_factor) as u64);
    }

    /// Weight memory (BRAM) never shrinks when the matrix grows.
    #[test]
    fn mvtu_bram_monotone_in_matrix_size(
        rows in 1usize..128,
        cols in 1usize..512,
        extra in 1usize..64,
    ) {
        let small = mvtu(rows, cols, 1, 1, 1).resources().bram36;
        let bigger = mvtu(rows + extra, cols, 1, 1, 1).resources().bram36;
        prop_assert!(bigger >= small);
    }

    /// A legal balanced folding exists for any budget, and compilation
    /// is deterministic.
    #[test]
    fn compilation_is_total_and_deterministic(target in 20_000u64..2_000_000) {
        let net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 1);
        let ir = ModelIr::from_summary(&net.summarize());
        let folding = FoldingConfig::balanced(&ir, target, 2.0);
        let device = FpgaDevice::zcu104();
        let a = compile(&ir, &folding, &device, 100.0);
        let b = compile(&ir, &folding, &device, 100.0);
        prop_assert!(a.is_ok());
        prop_assert_eq!(a.expect("checked"), b.expect("checked"));
    }

    /// A smaller cycle budget never produces a slower accelerator.
    #[test]
    fn tighter_budget_is_never_slower(lo in 20_000u64..200_000, hi_mult in 2u64..8) {
        let net = CnvConfig::tiny().build(10, 1);
        let ir = ModelIr::from_summary(&net.summarize());
        let device = FpgaDevice::zcu104();
        let tight = compile(&ir, &FoldingConfig::balanced(&ir, lo, 1.0), &device, 100.0)
            .expect("compiles");
        let loose = compile(&ir, &FoldingConfig::balanced(&ir, lo * hi_mult, 1.0), &device, 100.0)
            .expect("compiles");
        prop_assert!(tight.report().throughput_ips + 1e-9 >= loose.report().throughput_ips);
    }

    /// Performance evaluation respects the probability simplex: any
    /// valid exit mix yields finite, positive numbers bounded by the
    /// all-final/all-early extremes.
    #[test]
    fn performance_is_well_behaved(f0 in 0.0f64..1.0, f1_frac in 0.0f64..1.0) {
        let net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 1);
        let ir = ModelIr::from_summary(&net.summarize());
        let acc = compile(
            &ir,
            &FoldingConfig::balanced(&ir, 100_000, 2.0),
            &FpgaDevice::zcu104(),
            100.0,
        ).expect("compiles");
        let f1 = (1.0 - f0) * f1_frac;
        let f2 = 1.0 - f0 - f1;
        let p = acc.performance(&[f0, f1, f2]);
        prop_assert!(p.ips > 0.0 && p.ips.is_finite());
        prop_assert!(p.avg_latency_ms >= 0.0);
        prop_assert!(p.power_w > 0.0);
        prop_assert!(p.energy_per_inference_mj > 0.0);
        // The effective II is a max of functions linear in the mix, so it
        // is convex: any mix is bounded by the worst pure-exit vertex,
        // and the average latency is a convex combination of the path
        // latencies. (An exit branch may be slower than the remaining
        // backbone, so neither metric is monotone towards "earlier".)
        let vertices: Vec<_> = (0..3)
            .map(|e| {
                let mut fr = [0.0; 3];
                fr[e] = 1.0;
                acc.performance(&fr)
            })
            .collect();
        let worst_ips = vertices.iter().map(|v| v.ips).fold(f64::INFINITY, f64::min);
        prop_assert!(p.ips + 1e-6 >= worst_ips);
        let lo = vertices.iter().map(|v| v.avg_latency_ms).fold(f64::INFINITY, f64::min);
        let hi = vertices.iter().map(|v| v.avg_latency_ms).fold(0.0, f64::max);
        prop_assert!(p.avg_latency_ms >= lo - 1e-9 && p.avg_latency_ms <= hi + 1e-9);
    }
}
