//! Synthesis report: what Vivado + Verilator would tell you.

use crate::modules::ResourceUsage;
use serde::{Deserialize, Serialize};

/// Static synthesis results for one accelerator (all-inputs-full-depth
/// operating point; use [`Accelerator::performance`] for exit-fraction
/// aware numbers).
///
/// [`Accelerator::performance`]: crate::compiler::Accelerator::performance
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisReport {
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Total placed resources.
    pub resources: ResourceUsage,
    /// Device utilization fractions `(lut, ff, bram, dsp)`.
    pub utilization: (f64, f64, f64, f64),
    /// Static initiation interval in cycles (slowest module, all active).
    pub ii_cycles: u64,
    /// Pipeline throughput at the static II, in inferences per second.
    pub throughput_ips: f64,
    /// Pipeline latency to each exit in milliseconds (early exits first,
    /// final backbone exit last).
    pub latency_to_exit_ms: Vec<f64>,
    /// Board power with every module fully active, in watts.
    pub power_all_active_w: f64,
    /// Full-reconfiguration time for this device, in milliseconds.
    pub reconfig_time_ms: f64,
    /// Total multiply-accumulates per full-depth inference.
    pub backbone_macs: u64,
}

impl SynthesisReport {
    /// Latency to the final (backbone) exit in milliseconds.
    pub fn final_latency_ms(&self) -> f64 {
        *self
            .latency_to_exit_ms
            .last()
            .expect("at least the final exit exists")
    }

    /// Serializes the report to a JSON string — the interchange form
    /// the generator's artifact cache stores per variant, so downstream
    /// tools can reuse a variant's hardware characterization without
    /// recompiling it.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report is plain data")
    }

    /// Parses a report previously produced by
    /// [`to_json`](SynthesisReport::to_json).
    ///
    /// # Errors
    ///
    /// Returns the underlying decode error on malformed input, so
    /// callers can fall back to re-synthesis.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:.1} MHz | II {} cy | {:.0} IPS | lat {:.2} ms | LUT {:.1}% BRAM {:.1}% | {:.2} W",
            self.clock_mhz,
            self.ii_cycles,
            self.throughput_ips,
            self.final_latency_ms(),
            self.utilization.0 * 100.0,
            self.utilization.2 * 100.0,
            self.power_all_active_w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders() {
        let r = SynthesisReport {
            clock_mhz: 100.0,
            resources: ResourceUsage {
                bram36: 10,
                lut: 1000,
                ff: 800,
                dsp: 0,
            },
            utilization: (0.1, 0.05, 0.2, 0.0),
            ii_cycles: 1000,
            throughput_ips: 100_000.0,
            latency_to_exit_ms: vec![0.5, 1.5],
            power_all_active_w: 1.2,
            reconfig_time_ms: 145.0,
            backbone_macs: 1_000_000,
        };
        assert_eq!(r.final_latency_ms(), 1.5);
        let s = r.summary();
        assert!(s.contains("100000 IPS") || s.contains("100000"), "{s}");
        assert!(s.contains("1.2"), "{s}");
    }
}
