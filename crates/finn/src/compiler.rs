//! The compilation pipeline: IR + folding → placed dataflow accelerator.
//!
//! Mirrors FINN's transformation flow (paper Sec. II and IV-A1): every
//! conv becomes SWU → MVTU, every FC becomes an MVTU, pools become pool
//! units, AXI-stream FIFOs join consecutive modules, and — AdaPEx's
//! extension — a **Branch** module duplicates the stream wherever an
//! early exit attaches, with a deep FIFO buffering the feature map on
//! the exit side (the BRAM overhead discussed around Fig. 5(e)).

use crate::device::FpgaDevice;
use crate::folding::FoldingConfig;
use crate::graph::{DataflowGraph, ExitPath, PlacedModule, Segment};
use crate::ir::{IrNode, IrOp, ModelIr};
use crate::modules::HlsModule;
use crate::power::{PerformancePoint, PowerModel};
use crate::report::SynthesisReport;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Default inter-module FIFO depth (transactions).
const FIFO_DEPTH: usize = 32;
/// Depth cap for the exit-side feature-map buffer FIFO.
const EXIT_BUFFER_CAP: usize = 2048;
/// Bit width assumed for unquantized (logit / input image) streams.
const RAW_STREAM_BITS: u32 = 8;

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A matrix node has no folding entry.
    MissingFolding {
        /// Node name.
        node: String,
    },
    /// A folding entry violates a divisibility constraint.
    IllegalFolding {
        /// Node name.
        node: String,
        /// Human-readable violation.
        detail: String,
    },
    /// The placed design exceeds the device budget.
    ResourceOverflow {
        /// Violated resource.
        resource: &'static str,
        /// Amount required.
        used: u64,
        /// Amount available.
        available: u64,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::MissingFolding { node } => {
                write!(f, "no folding entry for matrix node `{node}`")
            }
            CompileError::IllegalFolding { node, detail } => {
                write!(f, "illegal folding for `{node}`: {detail}")
            }
            CompileError::ResourceOverflow {
                resource,
                used,
                available,
            } => write!(
                f,
                "design needs {used} {resource} but the device has {available}"
            ),
        }
    }
}

impl Error for CompileError {}

/// A compiled accelerator: the placed graph plus its synthesis report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    graph: DataflowGraph,
    report: SynthesisReport,
    clock_mhz: f64,
    static_power_w: f64,
    power_model: PowerModel,
}

impl Accelerator {
    /// The synthesis report.
    pub fn report(&self) -> &SynthesisReport {
        &self.report
    }

    /// The placed dataflow graph.
    pub fn graph(&self) -> &DataflowGraph {
        &self.graph
    }

    /// Number of exits (early + final).
    pub fn num_exits(&self) -> usize {
        self.graph.num_exits()
    }

    /// Evaluates the operating point for a given exit-taken mix
    /// (`exit_fractions` sums to 1, early exits first).
    ///
    /// # Panics
    ///
    /// Panics on a fraction-count mismatch.
    pub fn performance(&self, exit_fractions: &[f64]) -> PerformancePoint {
        let activity = self.graph.module_activity(exit_fractions);
        let ii = self.graph.effective_ii(exit_fractions).max(1.0);
        let clock_hz = self.clock_mhz * 1.0e6;
        let ips = clock_hz / ii;
        let avg_latency_ms = exit_fractions
            .iter()
            .enumerate()
            .map(|(e, &f)| f * self.graph.path_cycles_to_exit(e) as f64)
            .sum::<f64>()
            / clock_hz
            * 1_000.0;
        let power_w = self.static_power_w + self.power_model.dynamic_power_w(&self.graph, &activity);
        PerformancePoint {
            ips,
            avg_latency_ms,
            power_w,
            energy_per_inference_mj: power_w / ips * 1_000.0,
            exit_fractions: exit_fractions.to_vec(),
        }
    }
}

/// Tracked state of the stream flowing between modules.
#[derive(Debug, Clone, Copy)]
struct StreamState {
    channels: usize,
    hw: (usize, usize),
    act_bits: u32,
    lanes: usize,
}

impl StreamState {
    fn width_bits(&self) -> usize {
        self.lanes * self.act_bits as usize
    }

    fn transactions(&self) -> usize {
        self.hw.0 * self.hw.1 * self.channels.div_ceil(self.lanes.max(1))
    }
}

/// Compiles `ir` with `folding` for `device` at `clock_mhz`.
///
/// # Errors
///
/// Returns [`CompileError`] when folding entries are missing or illegal,
/// or the placed design does not fit the device.
///
/// # Panics
///
/// Panics if `clock_mhz` is not positive.
pub fn compile(
    ir: &ModelIr,
    folding: &FoldingConfig,
    device: &FpgaDevice,
    clock_mhz: f64,
) -> Result<Accelerator, CompileError> {
    assert!(clock_mhz > 0.0, "clock must be positive");
    let mut modules: Vec<PlacedModule> = Vec::new();
    let mut backbone_order: Vec<usize> = Vec::new();
    let mut exits: Vec<ExitPath> = Vec::new();

    let input_stream = StreamState {
        channels: ir.input_dims.first().copied().unwrap_or(1),
        hw: (
            ir.input_dims.get(1).copied().unwrap_or(1),
            ir.input_dims.get(2).copied().unwrap_or(1),
        ),
        act_bits: RAW_STREAM_BITS,
        lanes: 1,
    };

    let mut stream = input_stream;
    for (j, node) in ir.backbone.iter().enumerate() {
        let placed = lower_node(node, folding, stream, Segment::Backbone, &mut modules)?;
        backbone_order.extend(placed.clone());
        stream = next_stream(node, folding, stream)?;

        // Exits forking at this node's output.
        for (e, exit_ir) in ir.exits.iter().enumerate() {
            if exit_ir.attach_after != j {
                continue;
            }
            // Branch module duplicating the junction stream (backbone side).
            let branch_idx = modules.len();
            modules.push(PlacedModule {
                name: format!("branch_exit{e}"),
                segment: Segment::Backbone,
                module: HlsModule::Branch {
                    width_bits: stream.width_bits(),
                    stream_len: stream.transactions(),
                },
            });
            backbone_order.push(branch_idx);

            // Exit side: deep FIFO buffering the duplicated feature map,
            // then the branch's own modules.
            let mut exit_modules = Vec::new();
            let buf_idx = modules.len();
            modules.push(PlacedModule {
                name: format!("exit{e}_buffer"),
                segment: Segment::Exit(e),
                module: HlsModule::Fifo {
                    width_bits: stream.width_bits(),
                    depth: stream.transactions().min(EXIT_BUFFER_CAP),
                },
            });
            exit_modules.push(buf_idx);
            let mut e_stream = stream;
            for e_node in &exit_ir.nodes {
                let placed = lower_node(e_node, folding, e_stream, Segment::Exit(e), &mut modules)?;
                exit_modules.extend(placed);
                e_stream = next_stream(e_node, folding, e_stream)?;
            }
            exits.push(ExitPath {
                junction_after: backbone_order.len() - 1,
                modules: exit_modules,
            });
        }
    }

    let graph = DataflowGraph {
        modules,
        backbone_order,
        exits,
    };

    let resources = graph.total_resources();
    device
        .check_fit(resources)
        .map_err(|(resource, used, available)| CompileError::ResourceOverflow {
            resource,
            used,
            available,
        })?;

    let power_model = PowerModel::calibrated();
    let clock_hz = clock_mhz * 1.0e6;
    let ii = graph.max_cycles().max(1);
    let all_active = vec![1.0; graph.modules.len()];
    let num_exits = graph.num_exits();
    let report = SynthesisReport {
        clock_mhz,
        resources,
        utilization: device.utilization(resources),
        ii_cycles: ii,
        throughput_ips: clock_hz / ii as f64,
        latency_to_exit_ms: (0..num_exits)
            .map(|e| graph.path_cycles_to_exit(e) as f64 / clock_hz * 1_000.0)
            .collect(),
        power_all_active_w: device.static_power_w
            + power_model.dynamic_power_w(&graph, &all_active),
        reconfig_time_ms: device.reconfig_time_ms(),
        backbone_macs: ir.backbone_macs(),
    };

    Ok(Accelerator {
        graph,
        report,
        clock_mhz,
        static_power_w: device.static_power_w,
        power_model,
    })
}

/// Lowers one IR node into modules (FIFO + compute), returning the
/// indices of the placed modules.
fn lower_node(
    node: &IrNode,
    folding: &FoldingConfig,
    stream: StreamState,
    segment: Segment,
    modules: &mut Vec<PlacedModule>,
) -> Result<Vec<usize>, CompileError> {
    let mut placed = Vec::new();
    let mut push = |m: PlacedModule, modules: &mut Vec<PlacedModule>| {
        modules.push(m);
        placed.push(modules.len() - 1);
    };

    // Inter-module FIFO on the incoming stream.
    push(
        PlacedModule {
            name: format!("{}_fifo", node.name),
            segment,
            module: HlsModule::Fifo {
                width_bits: stream.width_bits().max(1),
                depth: FIFO_DEPTH,
            },
        },
        modules,
    );

    match &node.op {
        IrOp::Conv {
            c_in,
            c_out,
            kernel,
            in_hw,
            out_hw,
            weight_bits,
            act_bits,
            thresholds,
            ..
        } => {
            let f = folding
                .get(&node.name)
                .ok_or_else(|| CompileError::MissingFolding {
                    node: node.name.clone(),
                })?;
            if c_out % f.pe != 0 {
                return Err(CompileError::IllegalFolding {
                    node: node.name.clone(),
                    detail: format!("PE {} does not divide {} filters", f.pe, c_out),
                });
            }
            if c_in % f.simd != 0 {
                return Err(CompileError::IllegalFolding {
                    node: node.name.clone(),
                    detail: format!("SIMD {} does not divide {} input channels", f.simd, c_in),
                });
            }
            let out_pixels = out_hw.0 * out_hw.1;
            push(
                PlacedModule {
                    name: format!("{}_swu", node.name),
                    segment,
                    module: HlsModule::Swu {
                        c_in: *c_in,
                        kernel: *kernel,
                        in_hw: *in_hw,
                        out_pixels,
                        simd: f.simd,
                        act_bits: stream.act_bits,
                    },
                },
                modules,
            );
            push(
                PlacedModule {
                    name: format!("{}_mvtu", node.name),
                    segment,
                    module: HlsModule::Mvtu {
                        rows: *c_out,
                        cols: c_in * kernel * kernel,
                        pixels: out_pixels,
                        pe: f.pe,
                        simd: f.simd,
                        weight_bits: *weight_bits,
                        act_bits: act_bits.unwrap_or(RAW_STREAM_BITS),
                        thresholds: *thresholds,
                    },
                },
                modules,
            );
        }
        IrOp::Fc {
            in_features,
            out_features,
            weight_bits,
            act_bits,
            thresholds,
        } => {
            let f = folding
                .get(&node.name)
                .ok_or_else(|| CompileError::MissingFolding {
                    node: node.name.clone(),
                })?;
            if out_features % f.pe != 0 {
                return Err(CompileError::IllegalFolding {
                    node: node.name.clone(),
                    detail: format!("PE {} does not divide {} outputs", f.pe, out_features),
                });
            }
            if in_features % f.simd != 0 {
                return Err(CompileError::IllegalFolding {
                    node: node.name.clone(),
                    detail: format!("SIMD {} does not divide {} inputs", f.simd, in_features),
                });
            }
            push(
                PlacedModule {
                    name: format!("{}_mvtu", node.name),
                    segment,
                    module: HlsModule::Mvtu {
                        rows: *out_features,
                        cols: *in_features,
                        pixels: 1,
                        pe: f.pe,
                        simd: f.simd,
                        weight_bits: *weight_bits,
                        act_bits: act_bits.unwrap_or(RAW_STREAM_BITS),
                        thresholds: *thresholds,
                    },
                },
                modules,
            );
        }
        IrOp::MaxPool {
            kernel,
            channels,
            in_hw,
            ..
        } => {
            push(
                PlacedModule {
                    name: format!("{}_pool", node.name),
                    segment,
                    module: HlsModule::Pool {
                        channels: *channels,
                        kernel: *kernel,
                        in_hw: *in_hw,
                        act_bits: stream.act_bits,
                    },
                },
                modules,
            );
        }
    }
    Ok(placed)
}

/// The stream state after a node.
fn next_stream(
    node: &IrNode,
    folding: &FoldingConfig,
    stream: StreamState,
) -> Result<StreamState, CompileError> {
    Ok(match &node.op {
        IrOp::Conv {
            c_out,
            out_hw,
            act_bits,
            ..
        } => {
            let f = folding
                .get(&node.name)
                .ok_or_else(|| CompileError::MissingFolding {
                    node: node.name.clone(),
                })?;
            StreamState {
                channels: *c_out,
                hw: *out_hw,
                act_bits: act_bits.unwrap_or(RAW_STREAM_BITS),
                lanes: f.pe,
            }
        }
        IrOp::Fc {
            out_features,
            act_bits,
            ..
        } => {
            let f = folding
                .get(&node.name)
                .ok_or_else(|| CompileError::MissingFolding {
                    node: node.name.clone(),
                })?;
            StreamState {
                channels: *out_features,
                hw: (1, 1),
                act_bits: act_bits.unwrap_or(RAW_STREAM_BITS),
                lanes: f.pe,
            }
        }
        IrOp::MaxPool {
            channels, out_hw, ..
        } => StreamState {
            channels: *channels,
            hw: *out_hw,
            act_bits: stream.act_bits,
            lanes: stream.lanes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapex_nn::cnv::{CnvConfig, ExitsConfig};

    fn tiny_ir() -> ModelIr {
        let net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 1);
        ModelIr::from_summary(&net.summarize())
    }

    fn compiled() -> Accelerator {
        let ir = tiny_ir();
        let folding = FoldingConfig::auto(&ir, 4, 4);
        compile(&ir, &folding, &FpgaDevice::zcu104(), 100.0).expect("compile")
    }

    #[test]
    fn compiles_cnv_with_exits() {
        let acc = compiled();
        assert_eq!(acc.num_exits(), 3);
        let r = acc.report();
        assert!(r.throughput_ips > 0.0);
        assert_eq!(r.latency_to_exit_ms.len(), 3);
        // Earlier exits have lower latency.
        assert!(r.latency_to_exit_ms[0] < r.latency_to_exit_ms[2]);
        assert!(r.power_all_active_w > FpgaDevice::zcu104().static_power_w);
        assert!((r.reconfig_time_ms - 145.0).abs() < 1.0);
    }

    #[test]
    fn graph_has_branch_modules_per_exit() {
        let acc = compiled();
        let branches = acc
            .graph()
            .modules
            .iter()
            .filter(|m| matches!(m.module, HlsModule::Branch { .. }))
            .count();
        assert_eq!(branches, 2);
    }

    #[test]
    fn missing_folding_is_an_error() {
        let ir = tiny_ir();
        let folding = FoldingConfig::new();
        let err = compile(&ir, &folding, &FpgaDevice::zcu104(), 100.0).unwrap_err();
        assert!(matches!(err, CompileError::MissingFolding { .. }));
        assert!(err.to_string().contains("no folding entry"));
    }

    #[test]
    fn illegal_folding_is_an_error() {
        let ir = tiny_ir();
        let mut folding = FoldingConfig::auto(&ir, 4, 4);
        // First backbone conv has 4 filters; PE 3 does not divide it.
        folding.set("bb_conv1", crate::folding::MvtuFolding::new(3, 1));
        let err = compile(&ir, &folding, &FpgaDevice::zcu104(), 100.0).unwrap_err();
        assert!(matches!(err, CompileError::IllegalFolding { .. }), "{err}");
    }

    #[test]
    fn overflow_on_a_tiny_device() {
        let ir = tiny_ir();
        let folding = FoldingConfig::auto(&ir, 4, 4);
        let mut dev = FpgaDevice::zcu104();
        dev.lut = 500;
        let err = compile(&ir, &folding, &dev, 100.0).unwrap_err();
        assert!(matches!(err, CompileError::ResourceOverflow { .. }));
    }

    #[test]
    fn more_parallelism_means_more_throughput_and_resources() {
        let ir = tiny_ir();
        let dev = FpgaDevice::zcu104();
        let slow = compile(&ir, &FoldingConfig::auto(&ir, 1, 1), &dev, 100.0).unwrap();
        let fast = compile(&ir, &FoldingConfig::auto(&ir, 8, 8), &dev, 100.0).unwrap();
        assert!(fast.report().throughput_ips > slow.report().throughput_ips);
        assert!(fast.report().resources.lut > slow.report().resources.lut);
    }

    #[test]
    fn early_exit_mix_raises_throughput_and_cuts_energy() {
        let acc = compiled();
        let all_final = acc.performance(&[0.0, 0.0, 1.0]);
        let mostly_early = acc.performance(&[0.8, 0.1, 0.1]);
        assert!(mostly_early.ips >= all_final.ips);
        assert!(mostly_early.avg_latency_ms < all_final.avg_latency_ms);
        assert!(mostly_early.power_w <= all_final.power_w + 1e-9);
        assert!(mostly_early.energy_per_inference_mj < all_final.energy_per_inference_mj);
    }

    #[test]
    fn pruned_model_compiles_smaller_and_faster() {
        use adapex_prune_free::prune_like;
        // Inline helper below fakes pruning by building a narrower CNV.
        let wide = {
            let net = CnvConfig::scaled(8).build(10, 1);
            ModelIr::from_summary(&net.summarize())
        };
        let narrow = prune_like();
        let dev = FpgaDevice::zcu104();
        let acc_w = compile(&wide, &FoldingConfig::auto(&wide, 2, 2), &dev, 100.0).unwrap();
        let acc_n = compile(&narrow, &FoldingConfig::auto(&narrow, 2, 2), &dev, 100.0).unwrap();
        assert!(acc_n.report().resources.lut < acc_w.report().resources.lut);
        assert!(acc_n.report().throughput_ips > acc_w.report().throughput_ips);
        assert!(acc_n.report().final_latency_ms() < acc_w.report().final_latency_ms());
    }

    /// Narrower-CNV helper for the pruning comparison test.
    mod adapex_prune_free {
        use super::*;
        pub fn prune_like() -> ModelIr {
            let net = CnvConfig::scaled(4).build(10, 1);
            ModelIr::from_summary(&net.summarize())
        }
    }
}
