//! Power model and exit-fraction-aware performance evaluation.
//!
//! Dynamic power is proportional to each module's resources weighted by
//! its *activity* — the fraction of inputs that traverse it. Early exits
//! gate the deep backbone stream, so lowering the confidence threshold
//! reduces deep-module activity, raises effective throughput and lowers
//! both power and energy per inference — the mechanics behind the
//! paper's Figs. 1(b) and 4(b,d).

use crate::graph::DataflowGraph;
use serde::{Deserialize, Serialize};

/// Per-resource dynamic power coefficients (watts per unit at 100 MHz,
/// full activity).
///
/// The defaults are calibrated so the reproduction's width-scaled CNV
/// accelerators land in the paper's 1.1–1.4 W band (Table I). Because the
/// scaled models use ~10× fewer resources than full CNV, the coefficients
/// are correspondingly larger than raw silicon numbers; all experiments
/// read *relative* power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Watts per active LUT.
    pub lut_w: f64,
    /// Watts per active flip-flop.
    pub ff_w: f64,
    /// Watts per active BRAM36.
    pub bram_w: f64,
    /// Watts per active DSP.
    pub dsp_w: f64,
    /// Fraction of a module's dynamic power burned even when its stream
    /// is gated (clock tree, per-resource leakage). This is why the
    /// paper's early-exit accelerators draw 16-20 % more power than
    /// plain FINN despite gating (Table I).
    pub idle_activity: f64,
}

impl PowerModel {
    /// Calibrated defaults (see type docs).
    pub fn calibrated() -> Self {
        PowerModel {
            lut_w: 3.0e-5,
            ff_w: 1.0e-5,
            bram_w: 3.0e-3,
            dsp_w: 1.0e-3,
            idle_activity: 0.25,
        }
    }

    /// Dynamic power of the whole graph given per-module activity
    /// fractions.
    ///
    /// # Panics
    ///
    /// Panics if `activity.len() != graph.modules.len()`.
    pub fn dynamic_power_w(&self, graph: &DataflowGraph, activity: &[f64]) -> f64 {
        assert_eq!(
            activity.len(),
            graph.modules.len(),
            "one activity per module"
        );
        graph
            .modules
            .iter()
            .zip(activity)
            .map(|(m, &a)| {
                let r = m.module.resources();
                let effective = self.idle_activity + (1.0 - self.idle_activity) * a;
                effective
                    * (r.lut as f64 * self.lut_w
                        + r.ff as f64 * self.ff_w
                        + r.bram36 as f64 * self.bram_w
                        + r.dsp as f64 * self.dsp_w)
            })
            .sum()
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::calibrated()
    }
}

/// Accelerator behaviour at one operating point (one exit-fraction mix,
/// i.e. one confidence threshold on one input distribution).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformancePoint {
    /// Sustained throughput in inferences per second.
    pub ips: f64,
    /// Mean latency per inference in milliseconds (exit-fraction
    /// weighted pipeline latency).
    pub avg_latency_ms: f64,
    /// Board power in watts (static + activity-weighted dynamic).
    pub power_w: f64,
    /// Energy per inference in millijoules (`power / ips`).
    pub energy_per_inference_mj: f64,
    /// The exit-taken fractions this point was evaluated at.
    pub exit_fractions: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ExitPath, PlacedModule, Segment};
    use crate::modules::HlsModule;

    fn toy_graph() -> DataflowGraph {
        let mvtu = |rows: usize, cols: usize, pe: usize| HlsModule::Mvtu {
            rows,
            cols,
            pixels: 100,
            pe,
            simd: 2,
            weight_bits: 2,
            act_bits: 2,
            thresholds: true,
        };
        DataflowGraph {
            modules: vec![
                PlacedModule {
                    name: "b0".into(),
                    segment: Segment::Backbone,
                    module: mvtu(8, 64, 2),
                },
                PlacedModule {
                    name: "b1".into(),
                    segment: Segment::Backbone,
                    module: mvtu(64, 1024, 8),
                },
                PlacedModule {
                    name: "e0".into(),
                    segment: Segment::Exit(0),
                    module: mvtu(4, 16, 1),
                },
            ],
            backbone_order: vec![0, 1],
            exits: vec![ExitPath {
                junction_after: 0,
                modules: vec![2],
            }],
        }
    }

    #[test]
    fn dynamic_power_scales_with_activity_above_idle_floor() {
        let g = toy_graph();
        let pm = PowerModel::calibrated();
        let full = pm.dynamic_power_w(&g, &[1.0, 1.0, 1.0]);
        let half = pm.dynamic_power_w(&g, &[0.5, 0.5, 0.5]);
        let idle = pm.dynamic_power_w(&g, &[0.0, 0.0, 0.0]);
        assert!(full > 0.0);
        // Linear interpolation between the idle floor and full activity.
        let expect = idle + (full - idle) * 0.5;
        assert!((half - expect).abs() < 1e-12);
        assert!((idle - full * pm.idle_activity).abs() < 1e-12);
    }

    #[test]
    fn gating_deep_modules_saves_power() {
        let g = toy_graph();
        let pm = PowerModel::calibrated();
        let all_final = pm.dynamic_power_w(&g, &g.module_activity(&[0.0, 1.0]));
        let mostly_early = pm.dynamic_power_w(&g, &g.module_activity(&[0.9, 0.1]));
        assert!(mostly_early < all_final);
    }

    #[test]
    #[should_panic(expected = "one activity per module")]
    fn rejects_activity_mismatch() {
        PowerModel::calibrated().dynamic_power_w(&toy_graph(), &[1.0]);
    }
}
