//! ONNX-like intermediate representation and the streamlining pass.
//!
//! Real FINN imports a Brevitas ONNX export and runs *streamlining*
//! transformations that absorb BatchNorm and quantized activations into
//! the thresholds of the preceding matrix layer (so the FPGA executes a
//! Matrix-Vector-**Threshold** Unit rather than separate normalization
//! hardware). [`ModelIr::from_summary`] performs the same folding on the
//! training engine's structural summary.

use adapex_nn::network::{LayerInfo, NetworkSummary};
use serde::{Deserialize, Serialize};

/// Operation of one IR node (post-streamlining).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IrOp {
    /// Convolution (lowered on hardware to SWU + MVTU).
    Conv {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Square kernel.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        padding: usize,
        /// Input feature-map height/width.
        in_hw: (usize, usize),
        /// Output feature-map height/width.
        out_hw: (usize, usize),
        /// Weight bit width.
        weight_bits: u32,
        /// Output activation bit width (from the absorbed quantizer;
        /// `None` for a raw-logit output layer).
        act_bits: Option<u32>,
        /// Whether BatchNorm/activation thresholds were absorbed.
        thresholds: bool,
    },
    /// Fully-connected layer (lowered to one MVTU).
    Fc {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Weight bit width.
        weight_bits: u32,
        /// Output activation bit width.
        act_bits: Option<u32>,
        /// Whether thresholds were absorbed.
        thresholds: bool,
    },
    /// Max pooling.
    MaxPool {
        /// Window size (stride equals window).
        kernel: usize,
        /// Channels.
        channels: usize,
        /// Input feature-map height/width.
        in_hw: (usize, usize),
        /// Output feature-map height/width.
        out_hw: (usize, usize),
    },
}

impl IrOp {
    /// Multiply-accumulate operations per inference.
    pub fn macs(&self) -> u64 {
        match self {
            IrOp::Conv {
                c_in,
                c_out,
                kernel,
                out_hw,
                ..
            } => (c_in * c_out * kernel * kernel * out_hw.0 * out_hw.1) as u64,
            IrOp::Fc {
                in_features,
                out_features,
                ..
            } => (in_features * out_features) as u64,
            IrOp::MaxPool { .. } => 0,
        }
    }

    /// Weight storage bits (0 for pooling).
    pub fn weight_storage_bits(&self) -> u64 {
        match self {
            IrOp::Conv {
                c_in,
                c_out,
                kernel,
                weight_bits,
                ..
            } => (c_in * c_out * kernel * kernel) as u64 * u64::from(*weight_bits),
            IrOp::Fc {
                in_features,
                out_features,
                weight_bits,
                ..
            } => (in_features * out_features) as u64 * u64::from(*weight_bits),
            IrOp::MaxPool { .. } => 0,
        }
    }

    /// `true` for ops that map to an MVTU (and thus take a folding entry).
    pub fn is_matrix_op(&self) -> bool {
        matches!(self, IrOp::Conv { .. } | IrOp::Fc { .. })
    }

    /// Popcount word-operations per inference when this op runs on the
    /// software int2 engine (`adapex_tensor::int2`): each output element
    /// costs 4 AND+popcount streams over `ceil(k/64)` packed words,
    /// where `k` is the reduction depth. The padding words make this an
    /// over-count of `macs() / 16` by exactly the word-granularity
    /// rounding (equality when `k % 64 == 0`); the cross-check test pins
    /// both counters so the cycle model and the engine can't silently
    /// diverge.
    ///
    /// The count covers the **direct windowed conv path** exactly as
    /// well: its gather materializes, per output pixel, the same
    /// `ceil(k/64)` plane words the im2col route packs (window rows
    /// that fall in padding stay zero words, included in the padding-
    /// tail over-coverage above), and it then streams them through the
    /// identical GEMM — so the same formula counts both routes.
    pub fn int2_popcount_ops(&self) -> u64 {
        match self {
            IrOp::Conv {
                c_in,
                c_out,
                kernel,
                out_hw,
                ..
            } => {
                let k = c_in * kernel * kernel;
                (4 * k.div_ceil(64) * c_out * out_hw.0 * out_hw.1) as u64
            }
            IrOp::Fc {
                in_features,
                out_features,
                ..
            } => (4 * in_features.div_ceil(64) * out_features) as u64,
            IrOp::MaxPool { .. } => 0,
        }
    }
}

/// A named IR node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IrNode {
    /// Stable name, e.g. `bb2_conv` or `exit0_fc1`.
    pub name: String,
    /// The operation.
    pub op: IrOp,
}

/// One early-exit branch in the IR.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExitIr {
    /// Index of the backbone IR node whose output feeds this exit.
    pub attach_after: usize,
    /// The branch's nodes in execution order.
    pub nodes: Vec<IrNode>,
}

/// The streamlined network graph: a backbone chain plus exit branches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelIr {
    /// Backbone nodes in execution order.
    pub backbone: Vec<IrNode>,
    /// Early-exit branches, sorted by attachment node.
    pub exits: Vec<ExitIr>,
    /// Per-sample input shape.
    pub input_dims: Vec<usize>,
    /// Classes per output vector.
    pub num_classes: usize,
}

impl ModelIr {
    /// Builds IR from a training-engine summary, running the
    /// streamlining pass (BatchNorm + QuantAct fold into the preceding
    /// matrix node's thresholds; Flatten disappears — it is free on a
    /// stream).
    ///
    /// # Panics
    ///
    /// Panics if a BatchNorm/QuantAct appears before any matrix layer
    /// (nothing to absorb it into).
    pub fn from_summary(summary: &NetworkSummary) -> Self {
        let (backbone, index_map) = streamline(&summary.backbone, "bb");
        let exits = summary
            .exits
            .iter()
            .enumerate()
            .map(|(e, (attach_layer, layers))| {
                let (nodes, _) = streamline(layers, &format!("exit{e}"));
                ExitIr {
                    attach_after: index_map[*attach_layer]
                        .expect("exit must attach after a layer that produced an IR node"),
                    nodes,
                }
            })
            .collect();
        ModelIr {
            backbone,
            exits,
            input_dims: summary.input_dims.clone(),
            num_classes: summary.num_classes,
        }
    }

    /// Total exits including the final backbone output.
    pub fn num_exits(&self) -> usize {
        self.exits.len() + 1
    }

    /// Total MACs per full-depth inference (backbone only).
    pub fn backbone_macs(&self) -> u64 {
        self.backbone.iter().map(|n| n.op.macs()).sum()
    }

    /// Total weight storage bits across backbone and exits.
    pub fn weight_storage_bits(&self) -> u64 {
        self.backbone
            .iter()
            .chain(self.exits.iter().flat_map(|e| e.nodes.iter()))
            .map(|n| n.op.weight_storage_bits())
            .sum()
    }

    /// Expected per-sample `(MACs, popcount word-ops)` from the software
    /// int2 engine's `op_counters` when a full all-exits inference runs
    /// in eval mode: every matrix node **except the first backbone node**
    /// (the stem consumes the raw, unquantized image, so it stays on the
    /// f32 path) executes on the engine. Holds for both conv routes —
    /// im2col+pack and the direct windowed gather read the same word
    /// count per output pixel (`ADAPEX_INT2_DIRECT` never moves these
    /// counters; the cross-check pins that on both settings).
    pub fn int2_engine_profile(&self) -> (u64, u64) {
        let mut macs = 0u64;
        let mut pops = 0u64;
        for (idx, node) in self.matrix_nodes().into_iter().enumerate() {
            if idx == 0 {
                continue;
            }
            macs += node.op.macs();
            pops += node.op.int2_popcount_ops();
        }
        (macs, pops)
    }

    /// All matrix nodes (the ones that need folding), backbone first,
    /// then exits in order, each with its stable name.
    pub fn matrix_nodes(&self) -> Vec<&IrNode> {
        self.backbone
            .iter()
            .chain(self.exits.iter().flat_map(|e| e.nodes.iter()))
            .filter(|n| n.op.is_matrix_op())
            .collect()
    }
}

/// Streamlines one layer chain; returns IR nodes plus a map from input
/// layer index to the IR node index whose output carries that layer's
/// output (used to re-anchor exit attachment points).
fn streamline(layers: &[LayerInfo], prefix: &str) -> (Vec<IrNode>, Vec<Option<usize>>) {
    let mut nodes: Vec<IrNode> = Vec::new();
    let mut index_map: Vec<Option<usize>> = Vec::with_capacity(layers.len());
    let mut matrix_count = 0usize;
    let mut pool_count = 0usize;
    for layer in layers {
        match layer {
            LayerInfo::Conv {
                c_in,
                c_out,
                kernel,
                stride,
                padding,
                in_hw,
                out_hw,
                weight_bits,
            } => {
                matrix_count += 1;
                nodes.push(IrNode {
                    name: format!("{prefix}_conv{matrix_count}"),
                    op: IrOp::Conv {
                        c_in: *c_in,
                        c_out: *c_out,
                        kernel: *kernel,
                        stride: *stride,
                        padding: *padding,
                        in_hw: *in_hw,
                        out_hw: *out_hw,
                        weight_bits: *weight_bits,
                        act_bits: None,
                        thresholds: false,
                    },
                });
            }
            LayerInfo::Linear {
                in_features,
                out_features,
                weight_bits,
            } => {
                matrix_count += 1;
                nodes.push(IrNode {
                    name: format!("{prefix}_fc{matrix_count}"),
                    op: IrOp::Fc {
                        in_features: *in_features,
                        out_features: *out_features,
                        weight_bits: *weight_bits,
                        act_bits: None,
                        thresholds: false,
                    },
                });
            }
            LayerInfo::MaxPool {
                kernel,
                channels,
                in_hw,
                out_hw,
            } => {
                pool_count += 1;
                nodes.push(IrNode {
                    name: format!("{prefix}_pool{pool_count}"),
                    op: IrOp::MaxPool {
                        kernel: *kernel,
                        channels: *channels,
                        in_hw: *in_hw,
                        out_hw: *out_hw,
                    },
                });
            }
            LayerInfo::BatchNorm { .. } => {
                absorb_threshold(&mut nodes, None);
            }
            LayerInfo::QuantAct { bits } => {
                absorb_threshold(&mut nodes, Some(*bits));
            }
            LayerInfo::Flatten => { /* free on a stream */ }
        }
        index_map.push(if nodes.is_empty() { None } else { Some(nodes.len() - 1) });
    }
    (nodes, index_map)
}

/// Marks the most recent matrix node as threshold-bearing, recording the
/// activation bit width when given.
fn absorb_threshold(nodes: &mut [IrNode], act_bits: Option<u32>) {
    let node = nodes
        .iter_mut()
        .rev()
        .find(|n| n.op.is_matrix_op())
        .expect("BatchNorm/QuantAct must follow a matrix layer");
    match &mut node.op {
        IrOp::Conv {
            thresholds,
            act_bits: slot,
            ..
        }
        | IrOp::Fc {
            thresholds,
            act_bits: slot,
            ..
        } => {
            *thresholds = true;
            if act_bits.is_some() {
                *slot = act_bits;
            }
        }
        IrOp::MaxPool { .. } => unreachable!("filtered to matrix ops"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapex_nn::cnv::{CnvConfig, ExitsConfig};

    fn tiny_ir() -> ModelIr {
        let net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 1);
        ModelIr::from_summary(&net.summarize())
    }

    #[test]
    fn streamlining_folds_norm_and_act() {
        let ir = tiny_ir();
        // CNV backbone: 6 convs + 2 pools + 3 FCs = 11 nodes (BN/Act gone).
        assert_eq!(ir.backbone.len(), 11);
        match &ir.backbone[0].op {
            IrOp::Conv {
                thresholds,
                act_bits,
                ..
            } => {
                assert!(*thresholds);
                assert_eq!(*act_bits, Some(2));
            }
            other => panic!("expected conv, got {other:?}"),
        }
        // Final FC keeps raw logits (no act to absorb).
        match &ir.backbone[10].op {
            IrOp::Fc { act_bits, thresholds, .. } => {
                assert_eq!(*act_bits, None);
                assert!(!*thresholds);
            }
            other => panic!("expected fc, got {other:?}"),
        }
    }

    #[test]
    fn exits_reanchor_to_conv_nodes() {
        let ir = tiny_ir();
        assert_eq!(ir.exits.len(), 2);
        // Exit 0 attaches after backbone layer 5 (act of conv2), which
        // streamlines into node 1 (the second conv).
        assert_eq!(ir.exits[0].attach_after, 1);
        // Exit 1: act of conv4 = node 4 (conv1, conv2, pool, conv3, conv4).
        assert_eq!(ir.exits[1].attach_after, 4);
        // Exit branch: conv + pool + 2 fc = 4 nodes.
        assert_eq!(ir.exits[0].nodes.len(), 4);
    }

    #[test]
    fn macs_match_hand_count() {
        let op = IrOp::Conv {
            c_in: 3,
            c_out: 8,
            kernel: 3,
            stride: 1,
            padding: 0,
            in_hw: (32, 32),
            out_hw: (30, 30),
            weight_bits: 2,
            act_bits: Some(2),
            thresholds: true,
        };
        assert_eq!(op.macs(), 3 * 8 * 9 * 30 * 30);
        assert_eq!(op.weight_storage_bits(), 3 * 8 * 9 * 2);
        let ir = tiny_ir();
        assert!(ir.backbone_macs() > 0);
        assert!(ir.weight_storage_bits() > 0);
    }

    #[test]
    fn matrix_nodes_cover_backbone_and_exits() {
        let ir = tiny_ir();
        // Backbone: 6 conv + 3 fc; each exit: 1 conv + 2 fc.
        assert_eq!(ir.matrix_nodes().len(), 9 + 2 * 3);
        assert_eq!(ir.num_exits(), 3);
    }

    #[test]
    fn ir_serde_roundtrip() {
        let ir = tiny_ir();
        let json = serde_json::to_string(&ir).expect("serialize");
        let back: ModelIr = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(ir, back);
    }

    #[test]
    fn plain_network_has_no_exits() {
        let net = CnvConfig::tiny().build(10, 1);
        let ir = ModelIr::from_summary(&net.summarize());
        assert!(ir.exits.is_empty());
        assert_eq!(ir.num_exits(), 1);
    }
}
