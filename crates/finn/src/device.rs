//! FPGA device model.

use crate::modules::ResourceUsage;
use serde::{Deserialize, Serialize};

/// An FPGA device: resource budget plus full-reconfiguration parameters.
///
/// Reconfiguration follows the paper's runtime model: switching the
/// pruning rate means loading a new full bitstream through the
/// configuration port, during which the accelerator is offline. The
/// paper reports four reconfigurations totalling 580 ms on the ZCU104
/// (~145 ms each), which [`FpgaDevice::zcu104`] reproduces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Device name.
    pub name: String,
    /// LUT budget.
    pub lut: u64,
    /// Flip-flop budget.
    pub ff: u64,
    /// BRAM36 budget.
    pub bram36: u64,
    /// DSP48 budget.
    pub dsp: u64,
    /// Full bitstream size in bytes.
    pub bitstream_bytes: u64,
    /// Configuration-port bandwidth in bytes/second.
    pub config_bandwidth: u64,
    /// Static (idle) power in watts.
    pub static_power_w: f64,
}

impl FpgaDevice {
    /// The paper's target: Xilinx Zynq UltraScale+ ZCU104 (XCZU7EV).
    pub fn zcu104() -> Self {
        FpgaDevice {
            name: "ZCU104 (XCZU7EV)".to_string(),
            lut: 230_400,
            ff: 460_800,
            bram36: 312,
            dsp: 1_728,
            bitstream_bytes: 29_000_000,
            config_bandwidth: 200_000_000,
            static_power_w: 0.60,
        }
    }

    /// Full-reconfiguration time in milliseconds.
    pub fn reconfig_time_ms(&self) -> f64 {
        self.bitstream_bytes as f64 / self.config_bandwidth as f64 * 1_000.0
    }

    /// Whether `usage` fits the budget; on overflow, names the violated
    /// resource.
    pub fn check_fit(&self, usage: ResourceUsage) -> Result<(), (&'static str, u64, u64)> {
        if usage.lut > self.lut {
            return Err(("LUT", usage.lut, self.lut));
        }
        if usage.ff > self.ff {
            return Err(("FF", usage.ff, self.ff));
        }
        if usage.bram36 > self.bram36 {
            return Err(("BRAM36", usage.bram36, self.bram36));
        }
        if usage.dsp > self.dsp {
            return Err(("DSP", usage.dsp, self.dsp));
        }
        Ok(())
    }

    /// Utilization fractions `(lut, ff, bram, dsp)` of `usage`.
    pub fn utilization(&self, usage: ResourceUsage) -> (f64, f64, f64, f64) {
        (
            usage.lut as f64 / self.lut as f64,
            usage.ff as f64 / self.ff as f64,
            usage.bram36 as f64 / self.bram36 as f64,
            usage.dsp as f64 / self.dsp as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu104_reconfig_matches_paper_rate() {
        // Paper: 4 reconfigurations took 580 ms total -> 145 ms each.
        let t = FpgaDevice::zcu104().reconfig_time_ms();
        assert!((t - 145.0).abs() < 1.0, "reconfig {t} ms");
    }

    #[test]
    fn fit_check_names_offender() {
        let dev = FpgaDevice::zcu104();
        let ok = ResourceUsage {
            bram36: 100,
            lut: 1000,
            ff: 1000,
            dsp: 0,
        };
        assert!(dev.check_fit(ok).is_ok());
        let too_big = ResourceUsage {
            bram36: 500,
            ..ok
        };
        assert_eq!(dev.check_fit(too_big).unwrap_err().0, "BRAM36");
    }

    #[test]
    fn utilization_fractions() {
        let dev = FpgaDevice::zcu104();
        let half = ResourceUsage {
            bram36: 156,
            lut: 115_200,
            ff: 230_400,
            dsp: 864,
        };
        let (l, f, b, d) = dev.utilization(half);
        for v in [l, f, b, d] {
            assert!((v - 0.5).abs() < 1e-9);
        }
    }
}
