//! The placed dataflow graph: modules, paths and activity analysis.

use crate::modules::{HlsModule, ResourceUsage};
use serde::{Deserialize, Serialize};

/// Which part of the network a module belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// The original CNN's pipeline.
    Backbone,
    /// An early-exit branch (by exit ordinal).
    Exit(usize),
}

/// One module placed in the accelerator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedModule {
    /// Stable instance name, e.g. `bb_conv2_mvtu`.
    pub name: String,
    /// Segment membership.
    pub segment: Segment,
    /// The hardware module.
    pub module: HlsModule,
}

/// One exit branch's path through the graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExitPath {
    /// Position within the backbone module order after which the branch
    /// forks (inclusive: inputs taking this exit traverse backbone
    /// modules `0..=junction_after`).
    pub junction_after: usize,
    /// Indices (into `DataflowGraph::modules`) of the branch's modules.
    pub modules: Vec<usize>,
}

/// A complete placed accelerator graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataflowGraph {
    /// All modules.
    pub modules: Vec<PlacedModule>,
    /// Indices of backbone modules in dataflow order.
    pub backbone_order: Vec<usize>,
    /// Early-exit paths in exit order.
    pub exits: Vec<ExitPath>,
}

impl DataflowGraph {
    /// Total exits including the final backbone output.
    pub fn num_exits(&self) -> usize {
        self.exits.len() + 1
    }

    /// Sum of all module resources.
    pub fn total_resources(&self) -> ResourceUsage {
        self.modules
            .iter()
            .map(|m| m.module.resources())
            .fold(ResourceUsage::zero(), |acc, r| acc + r)
    }

    /// Resources used by one segment only.
    pub fn segment_resources(&self, segment: Segment) -> ResourceUsage {
        self.modules
            .iter()
            .filter(|m| m.segment == segment)
            .map(|m| m.module.resources())
            .fold(ResourceUsage::zero(), |acc, r| acc + r)
    }

    /// Static initiation interval: the slowest module with every input
    /// traversing the full graph (the classic FINN throughput bound).
    pub fn max_cycles(&self) -> u64 {
        self.modules
            .iter()
            .map(|m| m.module.cycles())
            .max()
            .unwrap_or(0)
    }

    /// Pipeline cycles from input to exit `e`'s output (`e` counts early
    /// exits first; `e == self.exits.len()` is the final backbone exit).
    ///
    /// # Panics
    ///
    /// Panics if `e > self.exits.len()`.
    pub fn path_cycles_to_exit(&self, e: usize) -> u64 {
        assert!(e <= self.exits.len(), "exit {e} out of range");
        if e == self.exits.len() {
            return self
                .backbone_order
                .iter()
                .map(|&i| self.modules[i].module.cycles())
                .sum();
        }
        let path = &self.exits[e];
        let backbone: u64 = self.backbone_order[..=path.junction_after]
            .iter()
            .map(|&i| self.modules[i].module.cycles())
            .sum();
        let branch: u64 = path
            .modules
            .iter()
            .map(|&i| self.modules[i].module.cycles())
            .sum();
        backbone + branch
    }

    /// Per-module traversal fraction given exit-taken fractions
    /// (`exit_fractions.len() == self.num_exits()`, early exits first).
    ///
    /// Inputs that exit at branch `e` traverse the backbone only up to the
    /// junction; AdaPEx gates the remaining stream, so deeper modules see
    /// proportionally less work.
    ///
    /// # Panics
    ///
    /// Panics on a fraction-count mismatch.
    pub fn module_activity(&self, exit_fractions: &[f64]) -> Vec<f64> {
        assert_eq!(
            exit_fractions.len(),
            self.num_exits(),
            "one fraction per exit"
        );
        let mut activity = vec![0.0f64; self.modules.len()];
        let f_final = exit_fractions[self.exits.len()];
        for (pos, &mi) in self.backbone_order.iter().enumerate() {
            // Traversed by final-exit inputs plus every early exit whose
            // junction is at or beyond this position.
            let mut a = f_final;
            for (e, path) in self.exits.iter().enumerate() {
                if path.junction_after >= pos {
                    a += exit_fractions[e];
                }
            }
            activity[mi] = a;
        }
        for (e, path) in self.exits.iter().enumerate() {
            for &mi in &path.modules {
                activity[mi] = exit_fractions[e];
            }
        }
        activity
    }

    /// Effective initiation interval under exit gating: each module's
    /// average occupancy is `activity * cycles`, and the pipeline is
    /// bounded by the busiest module.
    ///
    /// # Panics
    ///
    /// Panics on a fraction-count mismatch.
    pub fn effective_ii(&self, exit_fractions: &[f64]) -> f64 {
        let activity = self.module_activity(exit_fractions);
        self.modules
            .iter()
            .zip(&activity)
            .map(|(m, &a)| a * m.module.cycles() as f64)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Backbone of three 100/200/300-cycle modules with an exit (one
    /// 50-cycle module) attached after the first.
    fn toy_graph() -> DataflowGraph {
        let mk = |cycles: usize| HlsModule::Branch {
            width_bits: 1,
            stream_len: cycles,
        };
        DataflowGraph {
            modules: vec![
                PlacedModule {
                    name: "b0".into(),
                    segment: Segment::Backbone,
                    module: mk(100),
                },
                PlacedModule {
                    name: "b1".into(),
                    segment: Segment::Backbone,
                    module: mk(200),
                },
                PlacedModule {
                    name: "b2".into(),
                    segment: Segment::Backbone,
                    module: mk(300),
                },
                PlacedModule {
                    name: "e0".into(),
                    segment: Segment::Exit(0),
                    module: mk(50),
                },
            ],
            backbone_order: vec![0, 1, 2],
            exits: vec![ExitPath {
                junction_after: 0,
                modules: vec![3],
            }],
        }
    }

    #[test]
    fn path_cycles() {
        let g = toy_graph();
        assert_eq!(g.path_cycles_to_exit(0), 100 + 50);
        assert_eq!(g.path_cycles_to_exit(1), 600);
        assert_eq!(g.max_cycles(), 300);
    }

    #[test]
    fn activity_reflects_exit_fractions() {
        let g = toy_graph();
        let a = g.module_activity(&[0.6, 0.4]);
        assert!((a[0] - 1.0).abs() < 1e-9); // junction module sees all
        assert!((a[1] - 0.4).abs() < 1e-9); // deep modules only final
        assert!((a[2] - 0.4).abs() < 1e-9);
        assert!((a[3] - 0.6).abs() < 1e-9); // exit module
    }

    #[test]
    fn effective_ii_drops_when_inputs_exit_early() {
        let g = toy_graph();
        let all_final = g.effective_ii(&[0.0, 1.0]);
        let mostly_early = g.effective_ii(&[0.9, 0.1]);
        assert_eq!(all_final, 300.0);
        assert!(mostly_early < all_final);
        // Bound: junction module always sees everything.
        assert!(mostly_early >= 100.0);
    }

    #[test]
    fn segment_resources_split() {
        let g = toy_graph();
        let bb = g.segment_resources(Segment::Backbone);
        let ex = g.segment_resources(Segment::Exit(0));
        let total = g.total_resources();
        assert_eq!(bb.lut + ex.lut, total.lut);
    }

    #[test]
    #[should_panic(expected = "one fraction per exit")]
    fn activity_rejects_bad_fraction_count() {
        toy_graph().module_activity(&[1.0]);
    }
}
