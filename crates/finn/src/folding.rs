//! PE/SIMD folding configuration (FINN's JSON tuning file).
//!
//! Every MVTU is configured with a number of processing elements (PE,
//! parallelism over matrix rows / output channels) and SIMD lanes
//! (parallelism over matrix columns / input channels). FINN reads these
//! from a JSON file keyed by layer name; [`FoldingConfig`] serializes to
//! the same shape, and [`FoldingConfig::auto`] derives a legal default
//! from the IR.

use crate::ir::{IrNode, IrOp, ModelIr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parallelism of one MVTU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MvtuFolding {
    /// Processing elements (must divide the matrix row count, i.e. the
    /// output channels / features).
    pub pe: usize,
    /// SIMD lanes (must divide the per-pixel matrix column count: for a
    /// conv that is `c_in` — the SWU serializes the `k*k` window — and
    /// for an FC the input features).
    pub simd: usize,
}

impl MvtuFolding {
    /// New folding.
    ///
    /// # Panics
    ///
    /// Panics if either value is zero.
    pub fn new(pe: usize, simd: usize) -> Self {
        assert!(pe > 0 && simd > 0, "PE and SIMD must be positive");
        MvtuFolding { pe, simd }
    }
}

/// Folding for every matrix node in a model, keyed by IR node name
/// (BTreeMap so the JSON serialization is stable).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoldingConfig {
    /// Per-MVTU folding entries.
    pub entries: BTreeMap<String, MvtuFolding>,
}

impl FoldingConfig {
    /// Empty configuration.
    pub fn new() -> Self {
        FoldingConfig {
            entries: BTreeMap::new(),
        }
    }

    /// Derives a legal folding for every matrix node: the largest divisor
    /// of the row count at most `pe_target`, and of the column count at
    /// most `simd_target` (FINN's usual starting point before manual
    /// tuning).
    pub fn auto(ir: &ModelIr, pe_target: usize, simd_target: usize) -> Self {
        let mut entries = BTreeMap::new();
        for node in ir.matrix_nodes() {
            let (rows, cols) = match &node.op {
                IrOp::Conv { c_out, c_in, .. } => (*c_out, *c_in),
                IrOp::Fc {
                    out_features,
                    in_features,
                    ..
                } => (*out_features, *in_features),
                IrOp::MaxPool { .. } => continue,
            };
            entries.insert(
                node.name.clone(),
                MvtuFolding {
                    pe: largest_divisor_at_most(rows, pe_target),
                    simd: largest_divisor_at_most(cols, simd_target),
                },
            );
        }
        FoldingConfig { entries }
    }

    /// Derives a rate-balanced folding: every MVTU gets the cheapest
    /// `(pe, simd)` whose cycle count stays at or below `target_cycles`
    /// — how FINN users actually tune an accelerator to a frame-rate
    /// budget. Nodes *before the first exit junction* are folded to
    /// `target_cycles / pre_junction_speedup`: AdaPEx's branch
    /// architecture only converts early-exited inputs into extra
    /// throughput when the shared front of the pipeline runs faster
    /// than the gated deep layers, so the generator co-designs the
    /// folding with the exit placement (DESIGN.md §4).
    ///
    /// The folding is computed once, on the **unpruned** model, and
    /// reused verbatim by every pruned variant — which is precisely why
    /// the pruner must respect the PE/SIMD divisibility constraints.
    ///
    /// # Panics
    ///
    /// Panics if `target_cycles == 0` or `pre_junction_speedup <= 0`.
    pub fn balanced(ir: &ModelIr, target_cycles: u64, pre_junction_speedup: f64) -> Self {
        assert!(target_cycles > 0, "target cycles must be positive");
        assert!(pre_junction_speedup > 0.0, "speedup must be positive");
        let first_junction = ir.exits.iter().map(|e| e.attach_after).min();
        let mut entries = BTreeMap::new();
        let mut add = |node: &IrNode, tgt: u64| {
            let (rows, simd_base, cols, pixels) = match &node.op {
                IrOp::Conv {
                    c_out,
                    c_in,
                    kernel,
                    out_hw,
                    ..
                } => (*c_out, *c_in, c_in * kernel * kernel, out_hw.0 * out_hw.1),
                IrOp::Fc {
                    out_features,
                    in_features,
                    ..
                } => (*out_features, *in_features, *in_features, 1),
                IrOp::MaxPool { .. } => return,
            };
            entries.insert(node.name.clone(), cheapest_folding(rows, simd_base, cols, pixels, tgt));
        };
        for (j, node) in ir.backbone.iter().enumerate() {
            let pre = first_junction.is_some_and(|fj| j <= fj);
            let tgt = if pre {
                ((target_cycles as f64 / pre_junction_speedup) as u64).max(1)
            } else {
                target_cycles
            };
            add(node, tgt);
        }
        // Exit branches get the accelerated budget too: when the
        // threshold is low most inputs flow through an exit, so a lazily
        // folded exit would throttle the whole pipeline — the paper's
        // branch design promises "neither backbone nor exit throughput
        // is undermined".
        for exit in &ir.exits {
            for node in &exit.nodes {
                add(
                    node,
                    ((target_cycles as f64 / pre_junction_speedup) as u64).max(1),
                );
            }
        }
        FoldingConfig { entries }
    }

    /// Folding for a node, if configured.
    pub fn get(&self, name: &str) -> Option<MvtuFolding> {
        self.entries.get(name).copied()
    }

    /// Inserts or replaces a node's folding.
    pub fn set(&mut self, name: impl Into<String>, folding: MvtuFolding) {
        self.entries.insert(name.into(), folding);
    }

    /// Serializes to FINN-style JSON.
    ///
    /// # Errors
    ///
    /// Returns an error when serialization fails (it cannot for this
    /// type, but the signature mirrors `serde_json`).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses FINN-style JSON.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl Default for FoldingConfig {
    fn default() -> Self {
        FoldingConfig::new()
    }
}

/// Largest divisor of `n` that is `<= cap` (at least 1).
pub fn largest_divisor_at_most(n: usize, cap: usize) -> usize {
    let cap = cap.max(1).min(n.max(1));
    (1..=cap).rev().find(|&d| n.is_multiple_of(d)).unwrap_or(1)
}

/// Cheapest `(pe, simd)` (smallest `pe * simd`) meeting a cycle budget.
///
/// `simd` must divide `simd_base` (the input channel count), `pe` must
/// divide `rows`; cycles are `pixels * ceil(rows/pe) * ceil(cols/simd)`.
/// When even full parallelism misses the budget, the fastest legal
/// folding is returned.
fn cheapest_folding(rows: usize, simd_base: usize, cols: usize, pixels: usize, target: u64) -> MvtuFolding {
    let pe_options: Vec<usize> = (1..=rows).filter(|&d| rows.is_multiple_of(d)).collect();
    let simd_options: Vec<usize> =
        (1..=simd_base).filter(|&d| simd_base.is_multiple_of(d)).collect();
    let cycles = |pe: usize, simd: usize| -> u64 {
        (pixels as u64) * (rows.div_ceil(pe) as u64) * (cols.div_ceil(simd) as u64)
    };
    let mut best: Option<(usize, MvtuFolding)> = None;
    let mut fastest = MvtuFolding::new(rows, simd_base);
    let mut fastest_cycles = u64::MAX;
    for &pe in &pe_options {
        for &simd in &simd_options {
            let c = cycles(pe, simd);
            if c < fastest_cycles {
                fastest_cycles = c;
                fastest = MvtuFolding::new(pe, simd);
            }
            if c <= target {
                let cost = pe * simd;
                if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                    best = Some((cost, MvtuFolding::new(pe, simd)));
                }
            }
        }
    }
    best.map(|(_, f)| f).unwrap_or(fastest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapex_nn::cnv::{CnvConfig, ExitsConfig};

    #[test]
    fn divisor_search() {
        assert_eq!(largest_divisor_at_most(64, 16), 16);
        assert_eq!(largest_divisor_at_most(30, 16), 15);
        assert_eq!(largest_divisor_at_most(7, 4), 1);
        assert_eq!(largest_divisor_at_most(8, 100), 8);
        assert_eq!(largest_divisor_at_most(0, 4), 1);
    }

    #[test]
    fn auto_folding_is_legal_everywhere() {
        let net = CnvConfig::scaled(8).build_early_exit(10, &ExitsConfig::paper_default(), 1);
        let ir = crate::ir::ModelIr::from_summary(&net.summarize());
        let folding = FoldingConfig::auto(&ir, 4, 4);
        for node in ir.matrix_nodes() {
            let f = folding.get(&node.name).expect("every matrix node folded");
            match &node.op {
                IrOp::Conv { c_out, c_in, .. } => {
                    assert_eq!(c_out % f.pe, 0, "{}", node.name);
                    assert_eq!(c_in % f.simd, 0, "{}", node.name);
                }
                IrOp::Fc {
                    out_features,
                    in_features,
                    ..
                } => {
                    assert_eq!(out_features % f.pe, 0, "{}", node.name);
                    assert_eq!(in_features % f.simd, 0, "{}", node.name);
                }
                IrOp::MaxPool { .. } => {}
            }
        }
    }

    #[test]
    fn json_roundtrip_matches_finn_shape() {
        let mut cfg = FoldingConfig::new();
        cfg.set("bb_conv1", MvtuFolding::new(4, 3));
        let json = cfg.to_json().expect("serialize");
        assert!(json.contains("bb_conv1"));
        assert!(json.contains("\"pe\": 4"));
        let back = FoldingConfig::from_json(&json).expect("parse");
        assert_eq!(cfg, back);
    }

    #[test]
    #[should_panic(expected = "PE and SIMD must be positive")]
    fn rejects_zero_pe() {
        MvtuFolding::new(0, 1);
    }

    #[test]
    fn balanced_folding_meets_cycle_budget() {
        let net = CnvConfig::scaled(8).build_early_exit(10, &ExitsConfig::paper_default(), 1);
        let ir = crate::ir::ModelIr::from_summary(&net.summarize());
        let target = 250_000u64;
        let folding = FoldingConfig::balanced(&ir, target, 1.5);
        for node in ir.matrix_nodes() {
            let f = folding.get(&node.name).expect("folded");
            let (rows, cols, pixels, c_in) = match &node.op {
                IrOp::Conv {
                    c_out,
                    c_in,
                    kernel,
                    out_hw,
                    ..
                } => (*c_out, c_in * kernel * kernel, out_hw.0 * out_hw.1, *c_in),
                IrOp::Fc {
                    out_features,
                    in_features,
                    ..
                } => (*out_features, *in_features, 1, *in_features),
                IrOp::MaxPool { .. } => continue,
            };
            assert_eq!(rows % f.pe, 0, "{}", node.name);
            assert_eq!(c_in % f.simd, 0, "{}", node.name);
            let cycles =
                pixels as u64 * (rows.div_ceil(f.pe) as u64) * (cols.div_ceil(f.simd) as u64);
            assert!(
                cycles <= target,
                "{}: {cycles} cycles exceeds target {target}",
                node.name
            );
        }
    }

    #[test]
    fn pre_junction_nodes_are_folded_faster() {
        let net = CnvConfig::scaled(8).build_early_exit(10, &ExitsConfig::paper_default(), 1);
        let ir = crate::ir::ModelIr::from_summary(&net.summarize());
        let folding = FoldingConfig::balanced(&ir, 400_000, 2.0);
        // First conv processes 900 px * 8 rows * 27 cols = 194k cycles at
        // (1,1); the pre-junction budget 200k admits it, but conv2
        // (784 * 8 * 72 = 451k at (1,1)) must parallelize beyond (1,1).
        let f2 = folding.get("bb_conv2").expect("conv2 folded");
        assert!(f2.pe * f2.simd > 1, "conv2 should need parallelism: {f2:?}");
    }
}
