//! The HLS module library: cycle and resource estimators.
//!
//! Each module mirrors one of FINN's HLS template classes (paper Sec. II)
//! plus the **Branch** module AdaPEx contributes (Sec. IV-A1). The
//! estimators are first-order analytical models of the published FINN-R
//! architecture: cycles follow the folding arithmetic exactly; resources
//! use calibrated per-primitive costs (a 2-bit MAC in LUTs, BRAM36 blocks
//! for weight/line/FIFO storage). Absolute numbers are approximate by
//! design — every experiment in the paper depends on *relative* resource
//! and timing behaviour across pruned variants.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Bits in one BRAM36 block.
pub const BRAM36_BITS: u64 = 36 * 1024;

/// Memories at or below this size are implemented in distributed LUTRAM
/// rather than block RAM (Vivado's default inference behaviour, which
/// FINN relies on for small weight/line buffers).
pub const LUTRAM_THRESHOLD_BITS: u64 = 4 * 1024;

/// LUTs consumed per bit of distributed LUTRAM (conservative: includes
/// addressing overhead).
const LUTRAM_BITS_PER_LUT: u64 = 8;

/// Memory cost helper: `(bram36, lut)` for a memory of `bits`, with the
/// BRAM side partitioned into `banks` independent banks (e.g. one per
/// PE).
fn memory_cost(bits: u64, banks: u64) -> (u64, u64) {
    if bits == 0 {
        return (0, 0);
    }
    let banks = banks.max(1);
    if bits / banks <= LUTRAM_THRESHOLD_BITS {
        (0, bits.div_ceil(LUTRAM_BITS_PER_LUT))
    } else {
        (banks * (bits / banks).div_ceil(BRAM36_BITS), 0)
    }
}

/// FPGA resource vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// BRAM36 blocks.
    pub bram36: u64,
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP48 slices.
    pub dsp: u64,
}

impl ResourceUsage {
    /// Zero usage.
    pub fn zero() -> Self {
        ResourceUsage::default()
    }
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(self, rhs: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            bram36: self.bram36 + rhs.bram36,
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

impl AddAssign for ResourceUsage {
    fn add_assign(&mut self, rhs: ResourceUsage) {
        *self = *self + rhs;
    }
}

/// One placed hardware module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HlsModule {
    /// Sliding Window Unit: streams an input feature map and emits one
    /// `k*k*c_in` window per output pixel (streaming im2col).
    Swu {
        /// Input channels.
        c_in: usize,
        /// Kernel size.
        kernel: usize,
        /// Input feature map height/width.
        in_hw: (usize, usize),
        /// Output pixels (`out_h * out_w`).
        out_pixels: usize,
        /// SIMD lanes of the consuming MVTU.
        simd: usize,
        /// Activation bit width of the stream.
        act_bits: u32,
    },
    /// Matrix-Vector-Threshold Unit: the workhorse executing convs
    /// (after an SWU) and FC layers.
    Mvtu {
        /// Matrix rows (output channels / features).
        rows: usize,
        /// Matrix columns per output pixel (`k*k*c_in` or `in_features`).
        cols: usize,
        /// Output pixels this MVTU produces per inference (1 for FC).
        pixels: usize,
        /// Processing elements.
        pe: usize,
        /// SIMD lanes.
        simd: usize,
        /// Weight bit width.
        weight_bits: u32,
        /// Output activation bit width (8 for raw logits).
        act_bits: u32,
        /// Whether threshold units are instantiated (absorbed BN/quant).
        thresholds: bool,
    },
    /// Max-pooling unit.
    Pool {
        /// Channels.
        channels: usize,
        /// Window size.
        kernel: usize,
        /// Input feature-map height/width.
        in_hw: (usize, usize),
        /// Activation bit width.
        act_bits: u32,
    },
    /// AdaPEx's stream-duplicating branch module: copies the incoming
    /// AXI stream into two independent streams (backbone + exit) without
    /// stalling either (paper Sec. IV-A1).
    Branch {
        /// Stream width in bits (`simd * act_bits` of the junction).
        width_bits: usize,
        /// Stream transactions per inference.
        stream_len: usize,
    },
    /// Inter-module AXI stream FIFO.
    Fifo {
        /// Stream width in bits.
        width_bits: usize,
        /// Depth in transactions.
        depth: usize,
    },
}

impl HlsModule {
    /// Cycles this module needs per inference (its initiation interval
    /// contribution in the dataflow pipeline).
    pub fn cycles(&self) -> u64 {
        match self {
            HlsModule::Swu {
                c_in,
                in_hw,
                simd,
                ..
            } => (in_hw.0 * in_hw.1) as u64 * div_ceil(*c_in, *simd) as u64,
            HlsModule::Mvtu {
                rows,
                cols,
                pixels,
                pe,
                simd,
                ..
            } => (*pixels as u64) * div_ceil(*rows, *pe) as u64 * div_ceil(*cols, *simd) as u64,
            HlsModule::Pool { in_hw, .. } => (in_hw.0 * in_hw.1) as u64,
            HlsModule::Branch { stream_len, .. } => *stream_len as u64,
            HlsModule::Fifo { .. } => 0,
        }
    }

    /// Estimated resource usage.
    pub fn resources(&self) -> ResourceUsage {
        match self {
            HlsModule::Swu {
                c_in,
                kernel,
                in_hw,
                simd,
                act_bits,
                ..
            } => {
                // Line buffer: k rows of the input feature map.
                let buffer_bits = (*kernel * in_hw.1 * *c_in) as u64 * u64::from(*act_bits);
                let (bram, mem_lut) = memory_cost(buffer_bits, 1);
                ResourceUsage {
                    bram36: bram,
                    lut: 120 + 8 * *simd as u64 + mem_lut,
                    ff: 90 + 6 * *simd as u64,
                    dsp: 0,
                }
            }
            HlsModule::Mvtu {
                rows,
                cols,
                pe,
                simd,
                weight_bits,
                act_bits,
                thresholds,
                ..
            } => {
                let weight_bits_total = (*rows * *cols) as u64 * u64::from(*weight_bits);
                // Weight memory is partitioned per PE; small partitions
                // infer distributed LUTRAM, large ones block RAM.
                let (bram, weight_lut) = memory_cost(weight_bits_total, *pe as u64);
                let mac_lut = 3 * u64::from(*weight_bits) * u64::from(*act_bits).max(2);
                let threshold_lut = if *thresholds {
                    *pe as u64 * (1u64 << (*act_bits).min(4)) * 8
                } else {
                    0
                };
                let lut = 150 + (*pe * *simd) as u64 * mac_lut + threshold_lut + weight_lut;
                ResourceUsage {
                    bram36: bram,
                    lut,
                    ff: 120 + lut * 4 / 5,
                    // FINN maps narrow-precision MACs onto LUTs.
                    dsp: if *weight_bits <= 4 { 0 } else { (*pe * *simd) as u64 },
                }
            }
            HlsModule::Pool {
                channels,
                kernel,
                in_hw,
                act_bits,
            } => {
                let buffer_bits = (*kernel * in_hw.1 * *channels) as u64 * u64::from(*act_bits);
                let (bram, mem_lut) = memory_cost(buffer_bits, 1);
                ResourceUsage {
                    bram36: bram,
                    lut: 60 + *channels as u64 * u64::from(*act_bits) / 2 + mem_lut,
                    ff: 50 + *channels as u64 * u64::from(*act_bits) / 2,
                    dsp: 0,
                }
            }
            HlsModule::Branch { width_bits, .. } => ResourceUsage {
                bram36: 0,
                lut: 50 + *width_bits as u64,
                ff: 50 + *width_bits as u64,
                dsp: 0,
            },
            HlsModule::Fifo { width_bits, depth } => {
                let bits = (*width_bits * *depth) as u64;
                if *depth > 64 {
                    // Deep feature-map buffers: LUTRAM when small, BRAM
                    // beyond the inference threshold.
                    let (bram, mem_lut) = memory_cost(bits.max(LUTRAM_THRESHOLD_BITS + 1), 1);
                    ResourceUsage {
                        bram36: bram,
                        lut: 80 + mem_lut,
                        ff: 90,
                        dsp: 0,
                    }
                } else {
                    // Shallow FIFOs live in shift-register LUTs.
                    ResourceUsage {
                        bram36: 0,
                        lut: 30 + bits / 16,
                        ff: 40,
                        dsp: 0,
                    }
                }
            }
        }
    }

    /// Short kind label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            HlsModule::Swu { .. } => "SWU",
            HlsModule::Mvtu { .. } => "MVTU",
            HlsModule::Pool { .. } => "Pool",
            HlsModule::Branch { .. } => "Branch",
            HlsModule::Fifo { .. } => "FIFO",
        }
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mvtu(rows: usize, cols: usize, pixels: usize, pe: usize, simd: usize) -> HlsModule {
        HlsModule::Mvtu {
            rows,
            cols,
            pixels,
            pe,
            simd,
            weight_bits: 2,
            act_bits: 2,
            thresholds: true,
        }
    }

    #[test]
    fn mvtu_cycles_follow_folding_arithmetic() {
        // 64x576 matrix over 784 pixels at PE=16, SIMD=16:
        // 784 * (64/16) * (576/16) = 784 * 4 * 36.
        assert_eq!(mvtu(64, 576, 784, 16, 16).cycles(), 784 * 4 * 36);
        // Doubling PE halves cycles.
        assert_eq!(
            mvtu(64, 576, 784, 32, 16).cycles() * 2,
            mvtu(64, 576, 784, 16, 16).cycles()
        );
    }

    #[test]
    fn fc_mvtu_is_single_pixel() {
        assert_eq!(mvtu(512, 256, 1, 8, 8).cycles(), 64 * 32);
    }

    #[test]
    fn more_parallel_mvtu_uses_more_luts() {
        let small = mvtu(64, 576, 784, 4, 4).resources();
        let big = mvtu(64, 576, 784, 16, 16).resources();
        assert!(big.lut > small.lut);
        assert!(big.bram36 >= small.bram36);
    }

    #[test]
    fn two_bit_mvtu_uses_no_dsps() {
        assert_eq!(mvtu(64, 576, 784, 8, 8).resources().dsp, 0);
        let wide = HlsModule::Mvtu {
            rows: 64,
            cols: 576,
            pixels: 784,
            pe: 8,
            simd: 8,
            weight_bits: 8,
            act_bits: 8,
            thresholds: false,
        };
        assert!(wide.resources().dsp > 0);
    }

    #[test]
    fn pruned_weight_memory_shrinks() {
        // Full-CNV-scale matrices live in BRAM and shrink with pruning.
        let full = mvtu(256, 2304, 9, 8, 8).resources();
        let pruned = mvtu(128, 1152, 9, 8, 8).resources();
        assert!(pruned.bram36 < full.bram36);
        // Reproduction-scale matrices live in LUTRAM and still shrink.
        let small_full = mvtu(16, 144, 9, 2, 2).resources();
        let small_pruned = mvtu(8, 72, 9, 2, 2).resources();
        assert_eq!(small_full.bram36, 0);
        assert!(small_pruned.lut < small_full.lut);
    }

    #[test]
    fn swu_cycles_are_stream_bound() {
        let swu = HlsModule::Swu {
            c_in: 16,
            kernel: 3,
            in_hw: (32, 32),
            out_pixels: 900,
            simd: 4,
            act_bits: 2,
        };
        assert_eq!(swu.cycles(), 1024 * 4);
        // 3x32x16x2 = 3072 bits of line buffer: small enough for LUTRAM.
        let r = swu.resources();
        assert_eq!(r.bram36, 0);
        assert!(r.lut > 120 + 8 * 4, "line buffer must cost LUTs");
        // A full-width CNV SWU (64ch, 8-bit) exceeds the LUTRAM bound.
        let big = HlsModule::Swu {
            c_in: 64,
            kernel: 3,
            in_hw: (32, 32),
            out_pixels: 900,
            simd: 4,
            act_bits: 8,
        };
        assert!(big.resources().bram36 >= 1);
    }

    #[test]
    fn deep_fifo_moves_to_bram() {
        let shallow = HlsModule::Fifo {
            width_bits: 16,
            depth: 32,
        };
        let deep = HlsModule::Fifo {
            width_bits: 16,
            depth: 1024,
        };
        assert_eq!(shallow.resources().bram36, 0);
        assert!(deep.resources().bram36 >= 1);
        assert_eq!(shallow.cycles(), 0);
    }

    #[test]
    fn branch_is_cheap_and_stall_free() {
        let b = HlsModule::Branch {
            width_bits: 8,
            stream_len: 784,
        };
        // Pass-through: cycles equal the stream length, no BRAM of its own.
        assert_eq!(b.cycles(), 784);
        assert_eq!(b.resources().bram36, 0);
        assert_eq!(b.kind(), "Branch");
    }

    #[test]
    fn resource_addition() {
        let a = ResourceUsage {
            bram36: 1,
            lut: 10,
            ff: 5,
            dsp: 0,
        };
        let mut sum = a + a;
        sum += a;
        assert_eq!(sum.bram36, 3);
        assert_eq!(sum.lut, 30);
    }
}
