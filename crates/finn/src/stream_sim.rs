//! Discrete-event stream simulation of a placed accelerator.
//!
//! The paper extracts performance with Verilator RTL simulations; this
//! module is the analytical model's cross-check at that level: it pushes
//! individual inferences through the [`DataflowGraph`] as a pipeline of
//! busy/free stages, honouring module service times, the branch fork at
//! every exit junction, and AdaPEx's stream gating (an inference that
//! accepts an early exit never occupies the deeper backbone stages).
//!
//! The simulated steady-state initiation interval converges to
//! [`DataflowGraph::effective_ii`] and unloaded latencies equal
//! [`DataflowGraph::path_cycles_to_exit`] — the estimator tests pin this
//! agreement down.

use crate::graph::DataflowGraph;
use serde::{Deserialize, Serialize};

/// Result of one stream simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSimReport {
    /// Inferences completed.
    pub completed: usize,
    /// Completion timestamp (cycles) of every inference, in input order.
    pub completion_cycles: Vec<u64>,
    /// Latency (cycles) of every inference, in input order.
    pub latency_cycles: Vec<u64>,
    /// Steady-state initiation interval estimate: mean inter-completion
    /// gap over the second half of the run.
    pub steady_ii_cycles: f64,
    /// Mean latency in cycles per exit (index = exit ordinal, final
    /// backbone exit last); `None` when no inference took that exit.
    pub mean_latency_by_exit: Vec<Option<f64>>,
}

impl StreamSimReport {
    /// Simulated sustained throughput in inferences per second at
    /// `clock_mhz`.
    pub fn throughput_ips(&self, clock_mhz: f64) -> f64 {
        if self.steady_ii_cycles <= 0.0 {
            return 0.0;
        }
        clock_mhz * 1.0e6 / self.steady_ii_cycles
    }
}

/// Simulates `assignments.len()` back-to-back inferences through the
/// graph; `assignments[i]` is the exit inference `i` takes (early exits
/// first, `graph.exits.len()` = final backbone exit).
///
/// Inferences are offered as fast as the pipeline accepts them, so the
/// measured inter-completion gap is the pipeline's intrinsic initiation
/// interval under that exit mix.
///
/// # Panics
///
/// Panics if an assignment names a nonexistent exit.
pub fn simulate_stream(graph: &DataflowGraph, assignments: &[usize]) -> StreamSimReport {
    let num_exits = graph.num_exits();
    for &e in assignments {
        assert!(e < num_exits, "exit {e} out of range {num_exits}");
    }
    // Every module's next-free timestamp, in cycles.
    let mut free_at = vec![0u64; graph.modules.len()];
    let mut completions = Vec::with_capacity(assignments.len());
    let mut latencies = Vec::with_capacity(assignments.len());
    let mut latency_sum = vec![0u64; num_exits];
    let mut latency_count = vec![0usize; num_exits];

    for &exit in assignments {
        // An inference enters as soon as the first stage can take it.
        let entered = *free_at.first().unwrap_or(&0);
        let mut ready = entered;
        // Traverse the backbone up to (and including) the junction for an
        // early exit, or the whole backbone for the final exit.
        let junction = if exit < graph.exits.len() {
            graph.exits[exit].junction_after
        } else {
            graph.backbone_order.len().saturating_sub(1)
        };
        for (pos, &mi) in graph.backbone_order.iter().enumerate() {
            if pos > junction {
                break;
            }
            let start = ready.max(free_at[mi]);
            let finish = start + graph.modules[mi].module.cycles();
            free_at[mi] = finish;
            ready = finish;
        }
        if exit < graph.exits.len() {
            for &mi in &graph.exits[exit].modules {
                let start = ready.max(free_at[mi]);
                let finish = start + graph.modules[mi].module.cycles();
                free_at[mi] = finish;
                ready = finish;
            }
        }
        completions.push(ready);
        latencies.push(ready - entered);
        latency_sum[exit] += ready - entered;
        latency_count[exit] += 1;
    }

    // Steady-state II from the second half of the completion stream.
    let steady_ii = if completions.len() >= 4 {
        let half = completions.len() / 2;
        let span = completions[completions.len() - 1].saturating_sub(completions[half - 1]);
        span as f64 / (completions.len() - half) as f64
    } else if completions.len() >= 2 {
        (completions[completions.len() - 1] - completions[0]) as f64
            / (completions.len() - 1) as f64
    } else {
        0.0
    };

    StreamSimReport {
        completed: completions.len(),
        steady_ii_cycles: steady_ii,
        mean_latency_by_exit: latency_sum
            .iter()
            .zip(&latency_count)
            .map(|(&s, &c)| if c == 0 { None } else { Some(s as f64 / c as f64) })
            .collect(),
        completion_cycles: completions,
        latency_cycles: latencies,
    }
}

/// Builds a deterministic exit-assignment stream matching target exit
/// fractions (early exits first, final last): the paper's runtime sees a
/// mixed input stream, so the simulator round-robins exits in proportion.
///
/// # Panics
///
/// Panics unless `fractions` has one entry per exit summing to ~1.
pub fn assignments_from_fractions(fractions: &[f64], count: usize) -> Vec<usize> {
    assert!(!fractions.is_empty(), "at least one exit fraction");
    let sum: f64 = fractions.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "fractions must sum to 1, got {sum}");
    // Largest-remainder style accumulation keeps the mix exact over time.
    let mut acc = vec![0.0f64; fractions.len()];
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        for (a, f) in acc.iter_mut().zip(fractions) {
            *a += f;
        }
        let pick = acc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        acc[pick] -= 1.0;
        out.push(pick);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::device::FpgaDevice;
    use crate::folding::FoldingConfig;
    use crate::ir::ModelIr;
    use adapex_nn::cnv::{CnvConfig, ExitsConfig};

    fn compiled() -> crate::compiler::Accelerator {
        let net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 1);
        let ir = ModelIr::from_summary(&net.summarize());
        let folding = FoldingConfig::balanced(&ir, 100_000, 2.0);
        compile(&ir, &folding, &FpgaDevice::zcu104(), 100.0).expect("compiles")
    }

    #[test]
    fn single_inference_latency_matches_analytical_path() {
        let acc = compiled();
        let g = acc.graph();
        for exit in 0..g.num_exits() {
            let report = simulate_stream(g, &[exit]);
            assert_eq!(
                report.latency_cycles[0],
                g.path_cycles_to_exit(exit),
                "exit {exit}"
            );
        }
    }

    #[test]
    fn steady_ii_converges_to_analytical_effective_ii() {
        let acc = compiled();
        let g = acc.graph();
        for fractions in [
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
            vec![0.5, 0.2, 0.3],
            vec![0.85, 0.1, 0.05],
        ] {
            let assignments = assignments_from_fractions(&fractions, 400);
            let report = simulate_stream(g, &assignments);
            let analytical = g.effective_ii(&fractions);
            let ratio = report.steady_ii_cycles / analytical;
            assert!(
                (0.9..=1.35).contains(&ratio),
                "fractions {fractions:?}: simulated {:.0} vs analytical {analytical:.0} (ratio {ratio:.3})",
                report.steady_ii_cycles
            );
        }
    }

    #[test]
    fn completions_are_monotone() {
        let acc = compiled();
        let assignments = assignments_from_fractions(&[0.6, 0.2, 0.2], 100);
        let report = simulate_stream(acc.graph(), &assignments);
        assert_eq!(report.completed, 100);
        // The per-exit completion order can interleave, but time never
        // runs backwards for the same exit path; overall throughput is
        // positive.
        assert!(report.throughput_ips(100.0) > 0.0);
        assert!(report.mean_latency_by_exit.iter().flatten().all(|&l| l > 0.0));
    }

    #[test]
    fn early_exit_mix_completes_sooner_in_total() {
        let acc = compiled();
        let g = acc.graph();
        let all_final = simulate_stream(g, &assignments_from_fractions(&[0.0, 0.0, 1.0], 200));
        let mostly_early = simulate_stream(g, &assignments_from_fractions(&[0.9, 0.05, 0.05], 200));
        assert!(
            mostly_early.completion_cycles.last() < all_final.completion_cycles.last(),
            "gated stream must finish earlier"
        );
    }

    #[test]
    fn assignment_mix_is_exact() {
        let a = assignments_from_fractions(&[0.25, 0.25, 0.5], 200);
        let count = |e: usize| a.iter().filter(|&&x| x == e).count();
        assert_eq!(count(0), 50);
        assert_eq!(count(1), 50);
        assert_eq!(count(2), 100);
    }

    #[test]
    #[should_panic(expected = "fractions must sum to 1")]
    fn rejects_bad_fractions() {
        assignments_from_fractions(&[0.5, 0.2], 10);
    }
}
