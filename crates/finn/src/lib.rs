//! Analytical model of FINN-style FPGA dataflow CNN accelerators.
//!
//! The AdaPEx paper synthesizes each pruned early-exit CNN into a FINN
//! dataflow accelerator on a ZCU104 board and measures throughput,
//! latency, resources and power with Vivado + Verilator. This crate is
//! the reproduction's stand-in for that hardware flow (DESIGN.md §1): a
//! first-order analytical model of the FINN architecture as published in
//! FINN-R, with the paper's **branch module** extension:
//!
//! * [`ir`] — an ONNX-like intermediate representation of the network,
//!   produced from the training engine's structural summary, plus the
//!   *streamlining* pass that absorbs BatchNorm/quant activations into
//!   MVTU thresholds (as real FINN does).
//! * [`folding`] — per-MVTU PE/SIMD parallelism, mirroring FINN's JSON
//!   folding configuration file.
//! * [`modules`] — cycle and resource estimators for the HLS module
//!   library: SWU (sliding window), MVTU (matrix-vector-threshold), pool,
//!   FIFO, and the stream-duplicating **Branch** module AdaPEx adds for
//!   early exits.
//! * [`compiler`] — the transformation pipeline that lowers IR +
//!   folding into a placed [`graph::DataflowGraph`], checks the device
//!   budget, and emits a [`report::SynthesisReport`].
//! * [`device`] — the FPGA device model (ZCU104 / XCZU7EV) including
//!   full-reconfiguration timing.
//! * [`stream_sim`] — a discrete-event stream simulation (the
//!   reproduction's Verilator stand-in) that cross-checks the
//!   analytical throughput/latency estimates inference by inference.
//! * [`power`] — the resource-proportional power model and the
//!   exit-fraction-aware performance/energy evaluation.
//!
//! # Example
//!
//! ```
//! use adapex_nn::cnv::{CnvConfig, ExitsConfig};
//! use finn_dataflow::{compile, FoldingConfig, FpgaDevice, ModelIr};
//!
//! # fn main() -> Result<(), finn_dataflow::CompileError> {
//! let net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 1);
//! let ir = ModelIr::from_summary(&net.summarize());
//! let folding = FoldingConfig::auto(&ir, 4, 4);
//! let acc = compile(&ir, &folding, &FpgaDevice::zcu104(), 100.0)?;
//! assert!(acc.report().throughput_ips > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod compiler;
pub mod device;
pub mod folding;
pub mod graph;
pub mod ir;
pub mod modules;
pub mod power;
pub mod report;
pub mod stream_sim;

pub use compiler::{compile, Accelerator, CompileError};
pub use device::FpgaDevice;
pub use folding::{FoldingConfig, MvtuFolding};
pub use ir::{IrNode, IrOp, ModelIr};
pub use modules::{HlsModule, ResourceUsage};
pub use power::{PerformancePoint, PowerModel};
pub use report::SynthesisReport;
pub use stream_sim::{assignments_from_fractions, simulate_stream, StreamSimReport};
