//! Traffic-sign recognition at the edge (the paper's GTSRB workload,
//! 43 classes): generates GTSRB artifacts and walks through one
//! 25-second adaptive episode, printing the runtime trace — the
//! behaviour sketched on the right side of the paper's Fig. 3.
//!
//! ```text
//! cargo run --release -p adapex-bench --example traffic_sign_edge
//! ```

use adapex::baselines::{manager_for, System};
use adapex_bench::artifacts;
use adapex_dataset::DatasetKind;
use adapex_edge::{EdgeSimulation, SimConfig};

fn main() {
    let art = artifacts(DatasetKind::GtsrbLike);
    println!(
        "GTSRB library: {} entries; reference accuracy {:.1}%; reconfig {:.0} ms",
        art.adapex.len(),
        art.reference_accuracy * 100.0,
        art.reconfig_time_ms
    );

    let mut manager = manager_for(System::AdaPEx, &art, 0.10);
    let sim = EdgeSimulation::new(SimConfig::paper_default(art.reconfig_time_ms));
    let result = sim.run(&mut manager, 2024);

    println!("\nruntime trace (one episode):");
    println!(
        "{:>5} {:>8} {:>8} {:>8} {:>8} {:>6}",
        "t[s]", "IPS", "P.R.[%]", "C.T.[%]", "Acc[%]", "queue"
    );
    for s in &result.trace {
        println!(
            "{:>5.0} {:>8.0} {:>8.0} {:>8.0} {:>8.1} {:>6}",
            s.t,
            s.workload_ips,
            s.pruning_rate * 100.0,
            s.confidence_threshold * 100.0,
            s.accuracy * 100.0,
            s.queue_len,
        );
    }
    println!(
        "\nepisode: {:.1}% loss | accuracy {:.1}% | QoE {:.1}% | {:.2} W | {} reconfigs | {} CT moves",
        result.inference_loss_pct(),
        result.mean_accuracy * 100.0,
        result.qoe() * 100.0,
        result.mean_power_w,
        result.reconfig_count,
        result.ct_change_count,
    );
    println!(
        "energy {:.2} J over {:.0} s -> {:.3} mJ per inference, EDP {:.3} mJ*ms",
        result.energy_j,
        result.duration_s,
        result.energy_per_inference_mj().unwrap_or(0.0),
        result.edp().unwrap_or(0.0),
    );
}
