//! Interactive-ish tour of the pruning x confidence-threshold design
//! space (paper Fig. 4) and of the runtime manager's choices across a
//! workload sweep.
//!
//! ```text
//! cargo run --release -p adapex-bench --example design_space_explorer
//! ```

use adapex::runtime::{RuntimeManager, SelectionPolicy};
use adapex_bench::artifacts;
use adapex_dataset::DatasetKind;

fn main() {
    let art = artifacts(DatasetKind::Cifar10Like);
    let lib = &art.adapex;

    // Pareto front: points no other point beats on both accuracy and IPS.
    let all: Vec<_> = lib.design_space().collect();
    let mut pareto: Vec<_> = all
        .iter()
        .filter(|(_, p)| {
            !all.iter().any(|(_, q)| {
                (q.accuracy > p.accuracy && q.ips >= p.ips)
                    || (q.accuracy >= p.accuracy && q.ips > p.ips)
            })
        })
        .collect();
    pareto.sort_by(|a, b| a.1.ips.partial_cmp(&b.1.ips).expect("finite"));
    println!("design space: {} operating points; pareto front:", all.len());
    println!(
        "{:>8} {:>7} {:>11} {:>8} {:>8} {:>9}",
        "P.R.[%]", "C.T.[%]", "exits", "Acc[%]", "IPS", "E[mJ]"
    );
    for (e, p) in &pareto {
        println!(
            "{:>8.0} {:>7.0} {:>11} {:>8.1} {:>8.0} {:>9.3}",
            e.pruning_rate * 100.0,
            p.confidence_threshold * 100.0,
            if e.prune_exits { "pruned" } else { "not-pruned" },
            p.accuracy * 100.0,
            p.ips,
            p.energy_per_inference_mj,
        );
    }

    // What would the manager pick as the workload climbs?
    println!("\nruntime manager selections vs workload (accuracy threshold 10%):");
    let mut manager = RuntimeManager::new(
        lib.clone(),
        art.reference_accuracy - 0.10,
        SelectionPolicy::ReconfigAware,
    );
    println!(
        "{:>9} {:>8} {:>7} {:>8} {:>9}",
        "load[IPS]", "P.R.[%]", "C.T.[%]", "Acc[%]", "reconfig?"
    );
    for load in [200.0, 400.0, 600.0, 800.0, 1000.0, 1400.0, 2000.0, 600.0, 200.0] {
        let d = manager.decide(load);
        let entry = &manager.library().entries[d.entry];
        let point = &entry.points[d.point];
        println!(
            "{:>9.0} {:>8.0} {:>7.0} {:>8.1} {:>9}",
            load,
            entry.achieved_rate * 100.0,
            d.threshold * 100.0,
            point.accuracy * 100.0,
            if d.reconfig { "yes" } else { "-" },
        );
    }
    println!(
        "\ntotal: {} reconfigurations, {} free threshold moves",
        manager.reconfig_count, manager.ct_change_count
    );
}
