//! Quickstart: the whole AdaPEx pipeline on one small model.
//!
//! Builds a width-scaled CNVW2A2 with the paper's two early exits,
//! trains it jointly on a synthetic CIFAR-10-like dataset, prunes it
//! dataflow-aware at 50 %, retrains, compiles both variants to
//! FINN-style ZCU104 accelerators, and compares accuracy, throughput,
//! latency, resources and power at a few confidence thresholds.
//!
//! ```text
//! cargo run --release -p adapex-bench --example quickstart
//! ```

use adapex::generator::derive_constraints;
use adapex_dataset::{DatasetKind, SyntheticConfig};
use adapex_nn::cnv::{CnvConfig, ExitsConfig};
use adapex_nn::eval::evaluate_exits;
use adapex_nn::train::{TrainConfig, Trainer};
use adapex_prune::{PruneConfig, Pruner};
use finn_dataflow::{compile, FoldingConfig, FpgaDevice, ModelIr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: a synthetic stand-in for CIFAR-10 (10 classes, 3x32x32).
    let data = SyntheticConfig::new(DatasetKind::Cifar10Like)
        .with_sizes(600, 200)
        .with_seed(7)
        .generate();

    // 2. Model: CNV at width 8 with exits after blocks 1 and 2.
    let cnv = CnvConfig::scaled(8);
    let exits = ExitsConfig::paper_default();
    let mut net = cnv.build_early_exit(10, &exits, 42);
    println!("training early-exit CNV (joint loss, {} exits)...", net.num_exits());
    let trainer = Trainer::new(TrainConfig {
        epochs: 6,
        ..TrainConfig::repro_default()
    });
    let history = trainer.fit(&mut net, &data, 1);
    println!("  final epoch loss {:.3}", history.epoch_losses.last().unwrap());

    // 3. Folding: configure the FPGA parallelism once, on the unpruned
    //    model (this is the "FINN config" of the paper).
    let ir = ModelIr::from_summary(&net.summarize());
    let folding = FoldingConfig::balanced(&ir, 215_000, 2.0);
    let device = FpgaDevice::zcu104();

    // 4. Dataflow-aware pruning at 50 % (backbone only), then retrain.
    let constraints = derive_constraints(&net, &folding);
    let pruner = Pruner::new(PruneConfig {
        rate: 0.5,
        prune_exits: false,
    });
    let (mut pruned, report) = pruner.prune(&net, &constraints);
    println!(
        "pruned at 50% requested -> {:.1}% achieved (dataflow constraints)",
        report.overall_rate() * 100.0
    );
    Trainer::new(TrainConfig {
        epochs: 2,
        ..TrainConfig::repro_default()
    })
    .fit(&mut pruned, &data, 2);

    // 5. Compile both to ZCU104 accelerators with the SAME folding.
    for (name, model) in [("unpruned", &mut net), ("pruned-50%", &mut pruned)] {
        let ir = ModelIr::from_summary(&model.summarize());
        let acc = compile(&ir, &folding, &device, 100.0)?;
        println!("\n[{name}] {}", acc.report().summary());
        let eval = evaluate_exits(model, &data.test);
        for ct in [0.05f32, 0.5, 0.95] {
            let r = eval.at_threshold(ct);
            let perf = acc.performance(&r.exit_fractions);
            println!(
                "  CT {:>3.0}%: acc {:.1}%  {:>5.0} IPS  {:.2} ms  {:.2} W  {:.3} mJ/inf  exits {:?}",
                ct * 100.0,
                r.accuracy * 100.0,
                perf.ips,
                perf.avg_latency_ms,
                perf.power_w,
                perf.energy_per_inference_mj,
                r.exit_fractions
                    .iter()
                    .map(|f| format!("{:.0}%", f * 100.0))
                    .collect::<Vec<_>>(),
            );
        }
    }
    println!("\nLower thresholds push more inputs through the early exits: faster and");
    println!("cheaper, at some accuracy cost — the trade-off AdaPEx manages at runtime.");
    Ok(())
}
