//! Smart video surveillance at the edge — the paper's motivating
//! scenario (Sec. V): 20 cameras stream frames to an FPGA-equipped edge
//! server; the workload fluctuates ±30 % every 5 s. This example
//! generates a small AdaPEx library, then pits all four systems
//! (AdaPEx / PR-Only / CT-Only / FINN) against the same workload and
//! prints a miniature Table I.
//!
//! ```text
//! cargo run --release -p adapex-bench --example smart_surveillance
//! ```
//!
//! Set `ADAPEX_PROFILE=repro` for the full paper-scale library (slow).

use adapex::baselines::{manager_for, System};
use adapex_bench::{artifacts, repetitions};
use adapex_dataset::DatasetKind;
use adapex_edge::{mean_of, EdgeSimulation, ServeScenario, ServeScenarioConfig, SimConfig};

fn main() {
    let art = artifacts(DatasetKind::Cifar10Like);
    println!(
        "library: {} AdaPEx entries, {} PR-Only entries, reference accuracy {:.1}%",
        art.adapex.len(),
        art.pr_only.len(),
        art.reference_accuracy * 100.0
    );

    let reps = repetitions().min(25);
    let sim = EdgeSimulation::new(SimConfig::paper_default(art.reconfig_time_ms));
    println!(
        "\nsimulating {reps} episodes of 25 s (20 cameras x 30 IPS, ±30% every 5 s)\n"
    );
    println!(
        "{:>8}  {:>9} {:>8} {:>8} {:>9} {:>7} {:>9}",
        "System", "Loss[%]", "Acc[%]", "QoE[%]", "Power[W]", "Lat[ms]", "Reconfigs"
    );
    for system in System::all() {
        let manager = manager_for(system, &art, 0.10);
        let results = sim.run_many(&manager, reps, 0x5EED);
        println!(
            "{:>8}  {:>9.2} {:>8.1} {:>8.1} {:>9.2} {:>7.2} {:>9.1}",
            system.label(),
            mean_of(&results, |r| r.inference_loss_pct()),
            mean_of(&results, |r| r.mean_accuracy * 100.0),
            mean_of(&results, |r| r.qoe() * 100.0),
            mean_of(&results, |r| r.mean_power_w),
            mean_of(&results, |r| r.mean_latency_ms),
            mean_of(&results, |r| r.reconfig_count as f64),
        );
    }
    println!(
        "\nAdaPEx combines both knobs: it should keep inference loss near zero while\n\
         staying within 10% of the reference accuracy — the paper's Table I behaviour."
    );

    // Second act: the same cameras through the serving runtime — frames
    // queue per SLO class, the batcher assembles latency-budgeted
    // batches, and the manager still retunes CT / swaps bitstreams.
    println!("\nserving runtime (per-request view of the same workload):\n");
    println!(
        "{:>8}  {:>9} {:>9} {:>6} {:>6} {:>6} {:>9} {:>9}",
        "System", "Offered", "Goodput", "Drop", "Shed", "Defer", "p99[ms]", "Reconfigs"
    );
    // The fast-profile artifacts model slower accelerators than the
    // paper's; halve the per-camera rate so the comparison shows
    // adaptation rather than uniform overload.
    let mut serve_cfg = ServeScenarioConfig::paper_default(art.reconfig_time_ms);
    serve_cfg.workload.ips_per_camera /= 2.0;
    for system in System::all() {
        let manager = manager_for(system, &art, 0.10);
        let result = ServeScenario::run(&serve_cfg, manager);
        let r = &result.report;
        let worst_p99_ms = r
            .per_class
            .iter()
            .filter_map(|c| c.p99_us())
            .max()
            .map(|us| us as f64 / 1000.0)
            .unwrap_or(f64::NAN);
        println!(
            "{:>8}  {:>9} {:>9} {:>6} {:>6} {:>6} {:>9.1} {:>9}",
            system.label(),
            r.offered,
            r.completed_in_budget,
            r.dropped_full,
            r.shed_infeasible,
            r.deferrals,
            worst_p99_ms,
            result.reconfigs,
        );
    }
    println!(
        "\nGoodput counts completions inside each class's latency budget; drops and\n\
         sheds are the backpressure the admission controller made explicit."
    );
}
