//! Why early exits work: ties input difficulty to exit behaviour.
//!
//! Trains a small early-exit CNV, then analyses which samples the first
//! exit captures at several confidence thresholds — split by the
//! synthetic dataset's ground-truth easy/hard strata — plus a per-layer
//! pruning-sensitivity sweep and a dump of sample images as PPM files.
//!
//! ```text
//! cargo run --release -p adapex-bench --example exit_analysis
//! ```

use adapex_dataset::{ppm, DatasetKind, Difficulty, SyntheticConfig};
use adapex_nn::cnv::{CnvConfig, ExitsConfig};
use adapex_nn::eval::evaluate_exits;
use adapex_nn::train::{TrainConfig, Trainer};
use adapex_prune::sensitivity::sensitivity_sweep;
use adapex_prune::ConstraintMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticConfig::new(DatasetKind::Cifar10Like)
        .with_sizes(800, 300)
        .with_seed(3)
        .generate();
    let mut net = CnvConfig::scaled(8).build_early_exit(10, &ExitsConfig::paper_default(), 42);
    println!("training (8 epochs)...");
    Trainer::new(TrainConfig {
        epochs: 8,
        ..TrainConfig::repro_default()
    })
    .fit(&mut net, &data, 7);

    // --- Which inputs exit early? --------------------------------------
    let eval = evaluate_exits(&mut net, &data.test);
    println!("\nexit-0 capture rate by ground-truth difficulty stratum:");
    println!("{:>8} {:>12} {:>12} {:>14}", "CT[%]", "easy exits", "hard exits", "overall acc");
    for ct in [0.25f32, 0.5, 0.75, 0.9] {
        let mut counts = [[0usize; 2]; 2]; // [difficulty][exited-early]
        for s in 0..eval.samples {
            let early = eval.confidence[0][s] >= ct;
            let d = match data.test.difficulty(s) {
                Difficulty::Easy => 0,
                Difficulty::Hard => 1,
            };
            counts[d][usize::from(early)] += 1;
        }
        let frac = |d: usize| {
            let total = counts[d][0] + counts[d][1];
            100.0 * counts[d][1] as f64 / total.max(1) as f64
        };
        let report = eval.at_threshold(ct);
        println!(
            "{:>8.0} {:>11.1}% {:>11.1}% {:>13.1}%",
            ct * 100.0,
            frac(0),
            frac(1),
            report.accuracy * 100.0
        );
    }
    println!("(easy samples should clear the confidence bar far more often)");

    // --- Per-layer pruning sensitivity. --------------------------------
    println!("\nper-layer pruning sensitivity (prune one conv at 75%, no retrain):");
    let constraints = ConstraintMap::uniform(2, 2);
    let test = &data.test;
    let results = sensitivity_sweep(&net, &constraints, &[0.0, 0.75], |mutated| {
        let e = evaluate_exits(mutated, test);
        e.exit_accuracy(e.num_exits() - 1)
    });
    for r in &results {
        println!(
            "  {:?}: {} -> {} filters, final-exit acc {:.1}% -> {:.1}% (drop {:.1} pts)",
            r.site,
            r.original_filters,
            r.curve[1].1,
            r.curve[0].2 * 100.0,
            r.curve[1].2 * 100.0,
            r.score_drop() * 100.0
        );
    }

    // --- Sample gallery. ------------------------------------------------
    let dir = std::env::temp_dir().join("adapex-gallery");
    for i in 0..4 {
        let path = ppm::export_sample(&data.test, i, &dir, "test")?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
