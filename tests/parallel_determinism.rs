//! Determinism harness for the parallel design-space sweep: the
//! serialized [`Artifacts`] a generation run produces must be
//! byte-identical whatever `GeneratorConfig::jobs` is set to, and
//! repeated parallel runs must agree with each other.
//!
//! This is the regression net under the guarantee documented in
//! `LibraryGenerator::generate`: every variant's retrain seed derives
//! from `(seed, id)`, workers share only immutable state, and `par_map`
//! returns entries in id order.

use adapex::generator::{Artifacts, GeneratorConfig, LibraryGenerator};
use adapex_dataset::DatasetKind;

/// Fast-profile config trimmed to two variants per sweep so three full
/// generation runs stay test-suite friendly.
fn scenario(jobs: usize) -> GeneratorConfig {
    let mut cfg = GeneratorConfig::fast(DatasetKind::Cifar10Like);
    cfg.pruning_rates = vec![0.0, 0.4];
    cfg.jobs = jobs;
    cfg
}

fn generate_json(jobs: usize) -> (Artifacts, String) {
    let artifacts = LibraryGenerator::new(scenario(jobs)).generate();
    let json = serde_json::to_string_pretty(&artifacts).expect("artifacts serialize");
    (artifacts, json)
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let (seq_art, seq_json) = generate_json(1);
    let (par_art, par_json) = generate_json(4);

    // Entry-level equality first, for a readable failure location...
    assert_eq!(seq_art.adapex.entries.len(), par_art.adapex.entries.len());
    for (s, p) in seq_art.adapex.entries.iter().zip(&par_art.adapex.entries) {
        assert_eq!(s, p, "adapex entry {} diverged between jobs=1 and jobs=4", s.id);
    }
    for (s, p) in seq_art.pr_only.entries.iter().zip(&par_art.pr_only.entries) {
        assert_eq!(s, p, "pr_only entry {} diverged between jobs=1 and jobs=4", s.id);
    }
    assert_eq!(seq_art.reference_accuracy, par_art.reference_accuracy);

    // ...then the actual guarantee: byte-identical serialized form.
    // (`jobs` itself is #[serde(skip)], so it cannot explain a diff.)
    assert_eq!(
        seq_json, par_json,
        "serialized artifacts must not depend on the job count"
    );
}

#[test]
fn repeated_parallel_runs_are_bit_identical() {
    let (_, first) = generate_json(4);
    let (_, second) = generate_json(4);
    assert_eq!(
        first, second,
        "two jobs=4 runs of the same config must serialize identically"
    );
}

#[test]
fn entry_ids_are_sequential_in_both_libraries() {
    let (artifacts, _) = generate_json(3);
    for (i, e) in artifacts.adapex.entries.iter().enumerate() {
        assert_eq!(e.id, i, "adapex entries must come back in id order");
    }
    for (i, e) in artifacts.pr_only.entries.iter().enumerate() {
        assert_eq!(e.id, i, "pr_only entries must come back in id order");
    }
}
