//! Full-pipeline integration test: dataset synthesis → joint early-exit
//! training → dataflow-aware pruning → accelerator compilation → library
//! → runtime adaptation → edge simulation, at a reduced scale sized so
//! the paper's qualitative relations are visible.

use adapex::baselines::{manager_for, System};
use adapex::generator::{GeneratorConfig, LibraryGenerator};
use adapex_dataset::DatasetKind;
use adapex_edge::{mean_of, EdgeSimulation, SimConfig};

/// A small but *provisioning-realistic* configuration: the unpruned
/// accelerator sustains ~465 IPS against a 600 IPS nominal workload, so
/// the static FINN baseline must lose inferences while AdaPEx adapts.
fn scenario_config() -> GeneratorConfig {
    let mut cfg = GeneratorConfig::fast(DatasetKind::Cifar10Like);
    // Width 8: the tiny width-4 CNV cannot be folded slower than ~900
    // IPS (PE=SIMD=1 already beats the budget), so overload never
    // happens; at width 8 the 215k-cycle budget yields ~465 IPS.
    cfg.cnv = adapex_nn::cnv::CnvConfig::scaled(8);
    cfg.pruning_rates = vec![0.0, 0.3, 0.6];
    cfg.ct_step = 0.10;
    cfg.folding_target_cycles = 215_000;
    cfg
}

#[test]
fn adapex_beats_static_finn_under_overload() {
    let artifacts = LibraryGenerator::new(scenario_config()).generate();
    let sim = EdgeSimulation::new(SimConfig::paper_default(artifacts.reconfig_time_ms));
    let reps = 10;

    let run = |system: System| {
        let manager = manager_for(system, &artifacts, 0.10);
        sim.run_many(&manager, reps, 77)
    };
    let adapex = run(System::AdaPEx);
    let finn = run(System::Finn);
    let pr = run(System::PrOnly);
    let ct = run(System::CtOnly);

    let loss = |rs: &[adapex_edge::SimResult]| mean_of(rs, |r| r.inference_loss_pct());
    let qoe = |rs: &[adapex_edge::SimResult]| mean_of(rs, |r| r.qoe());

    // The paper's headline relations (Table I / Fig. 6), as orderings.
    assert!(
        loss(&finn) > 10.0,
        "static FINN must lose inferences under overload, got {:.2}%",
        loss(&finn)
    );
    assert!(
        loss(&adapex) < loss(&finn),
        "AdaPEx loss {:.2}% must beat FINN {:.2}%",
        loss(&adapex),
        loss(&finn)
    );
    assert!(
        loss(&adapex) < 2.0,
        "AdaPEx should keep up with the workload, lost {:.2}%",
        loss(&adapex)
    );
    assert!(
        qoe(&adapex) > qoe(&finn),
        "AdaPEx QoE {:.3} must beat FINN {:.3}",
        qoe(&adapex),
        qoe(&finn)
    );
    // Single-knob baselines sit between the static baseline and AdaPEx
    // on inference loss (each can shed some but not all overload).
    assert!(loss(&pr) <= loss(&finn) + 1e-9);
    assert!(loss(&ct) <= loss(&finn) + 1e-9);

    // Latency: AdaPEx processes requests faster than saturated FINN.
    let lat = |rs: &[adapex_edge::SimResult]| mean_of(rs, |r| r.mean_latency_ms);
    assert!(
        lat(&adapex) < lat(&finn),
        "AdaPEx latency {:.2} must beat FINN {:.2}",
        lat(&adapex),
        lat(&finn)
    );

    // EDP: AdaPEx at or below FINN (the paper reports 2.0-2.55x better).
    let edp = |rs: &[adapex_edge::SimResult]| {
        mean_of(rs, |r| r.edp().expect("episodes process inferences"))
    };
    assert!(
        edp(&adapex) < edp(&finn),
        "AdaPEx EDP {:.3} must beat FINN {:.3}",
        edp(&adapex),
        edp(&finn)
    );
}

#[test]
fn accuracy_threshold_is_respected_when_feasible() {
    let artifacts = LibraryGenerator::new(scenario_config()).generate();
    let mut manager = manager_for(System::AdaPEx, &artifacts, 0.10);
    let floor = artifacts.reference_accuracy - 0.10;
    // At modest workloads a qualifying point must exist and be chosen.
    for load in [100.0, 300.0, 450.0] {
        let d = manager.decide(load);
        let point = &manager.library().entries[d.entry].points[d.point];
        if manager.library().select_strict(load, floor, None).is_some() {
            assert!(
                point.accuracy >= floor,
                "selected accuracy {:.3} below floor {floor:.3} at load {load}",
                point.accuracy
            );
        }
    }
}

#[test]
fn artifacts_roundtrip_through_json() {
    let artifacts = LibraryGenerator::new(GeneratorConfig::fast(DatasetKind::Cifar10Like)).generate();
    let dir = std::env::temp_dir().join("adapex-e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("artifacts.json");
    artifacts.save_json(&path).expect("save");
    let back = adapex::generator::Artifacts::load_json(&path).expect("load");
    assert_eq!(artifacts, back);
}
