//! Golden regression suite over the committed scenario library.
//!
//! Every scenario under `tests/golden/scenarios/` is pinned three ways:
//!
//! 1. **Lockstep**: the committed file must byte-match the
//!    [`adapex_edge::builtin_library`] constructor of the same name, so
//!    the JSON on disk and the code can never drift apart.
//! 2. **Golden result**: replaying the scenario through the fixed
//!    golden manager must reproduce the full serialized result snapshot
//!    (`<name>.result.json` next to the scenario).
//! 3. **Jobs invariance**: sharded replays at `--jobs 1` and `--jobs 4`
//!    must agree byte-for-byte.
//!
//! To re-bless after an *intentional* behaviour change:
//!
//! ```text
//! ADAPEX_BLESS=1 cargo test -p adapex-integration --test golden_scenario_library
//! ```

use adapex::library::{Library, LibraryEntry, OperatingPoint};
use adapex::runtime::{MitigationConfig, RuntimeManager, SelectionPolicy};
use adapex_edge::{builtin_library, builtin_scenario, EdgeSimulation, Fleet, ScenarioFile, SimResult};
use finn_dataflow::ResourceUsage;
use serde::Serialize;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn scenarios_dir() -> PathBuf {
    golden_dir().join("scenarios")
}

fn blessing() -> bool {
    std::env::var("ADAPEX_BLESS").is_ok_and(|v| v == "1")
}

fn entry(id: usize, rate: f64, points: &[(f64, f64, f64)]) -> LibraryEntry {
    let points: Vec<OperatingPoint> = points
        .iter()
        .map(|&(ct, acc, ips)| OperatingPoint {
            confidence_threshold: ct,
            accuracy: acc,
            exit_fractions: vec![1.0],
            ips,
            avg_latency_ms: 2.0,
            power_w: 1.2,
            energy_per_inference_mj: 1.2 / ips * 1000.0,
        })
        .collect();
    let acc = points[0].accuracy;
    LibraryEntry {
        id,
        pruning_rate: rate,
        achieved_rate: rate,
        prune_exits: false,
        mean_exit_accuracy: acc,
        final_exit_accuracy: acc,
        resources: ResourceUsage::zero(),
        exit_resources: ResourceUsage::zero(),
        utilization: (0.1, 0.1, 0.1, 0.0),
        static_ips: points[0].ips,
        latency_to_exit_ms: vec![1.0],
        points,
    }
}

/// The same fixed golden manager as `golden_scenarios.rs`:
/// accurate/pruned/degraded-headroom entries with threshold-only
/// fallback points.
fn golden_manager(mitigation: MitigationConfig) -> RuntimeManager {
    let library = Library {
        entries: vec![
            entry(0, 0.0, &[(0.9, 0.88, 700.0), (0.3, 0.82, 1150.0)]),
            entry(1, 0.5, &[(0.9, 0.80, 1400.0), (0.3, 0.76, 1900.0)]),
            entry(2, 0.8, &[(0.9, 0.70, 2500.0)]),
        ],
    };
    let mut m = RuntimeManager::new(library, 0.75, SelectionPolicy::ReconfigAware);
    m.set_mitigation(mitigation);
    m
}

/// Mitigation mirrors the CLI default: recommended under a fault plan,
/// the paper's bare manager otherwise.
fn mitigation_for(file: &ScenarioFile) -> MitigationConfig {
    if file.faults.is_none() {
        MitigationConfig::off()
    } else {
        MitigationConfig::recommended()
    }
}

/// Replays a (non-fleet) scenario exactly like `adapex-cli trace
/// --scenario <file>` does, with the fixed golden manager.
fn run_scenario_file(file: &ScenarioFile) -> SimResult {
    let sim = EdgeSimulation::new(file.sim_config(145.0));
    let mut manager = golden_manager(mitigation_for(file));
    sim.run_with_workload_and_faults(&mut manager, &file.workload, file.seed, &file.faults)
}

fn check_golden<T: Serialize>(name: &str, result: &T) {
    let path = scenarios_dir().join(format!("{name}.result.json"));
    let mut actual = serde_json::to_string_pretty(result).expect("serialize result");
    actual.push('\n');
    if blessing() {
        std::fs::create_dir_all(scenarios_dir()).expect("create scenarios dir");
        std::fs::write(&path, &actual).expect("bless golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with ADAPEX_BLESS=1 to generate",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "scenario `{name}` drifted from its golden snapshot; if the change \
         is intentional, re-bless with ADAPEX_BLESS=1"
    );
}

#[test]
fn committed_scenario_files_match_the_builtin_library() {
    // Lockstep both ways: the file parses back to the constructor's
    // value AND serializes to the committed bytes, so `adapex-cli
    // --scenario tests/golden/scenarios/<name>.json` replays exactly
    // what the tests and benches pin.
    let lib = builtin_library();
    assert!(lib.len() >= 5, "ship at least 5 scenarios");
    for scenario in &lib {
        let path = scenarios_dir().join(format!("{}.json", scenario.name));
        if blessing() {
            std::fs::create_dir_all(scenarios_dir()).expect("create scenarios dir");
            scenario.save_json(&path).expect("bless scenario file");
            continue;
        }
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing scenario file {} ({e}); run with ADAPEX_BLESS=1 to generate",
                path.display()
            )
        });
        let mut expected = serde_json::to_string_pretty(scenario).expect("serialize scenario");
        expected.push('\n');
        assert_eq!(on_disk, expected, "{}: file drifted from code", scenario.name);
        let parsed = ScenarioFile::load_json(&path).expect("parse committed scenario");
        assert_eq!(&parsed, scenario, "{}: parse mismatch", scenario.name);
    }
}

#[test]
fn golden_paper_synthetic() {
    let s = builtin_scenario("paper-synthetic").expect("shipped");
    check_golden(&s.name, &run_scenario_file(&s));
}

#[test]
fn golden_diurnal_cycle() {
    let s = builtin_scenario("diurnal-cycle").expect("shipped");
    check_golden(&s.name, &run_scenario_file(&s));
}

#[test]
fn golden_flash_crowd() {
    let s = builtin_scenario("flash-crowd").expect("shipped");
    check_golden(&s.name, &run_scenario_file(&s));
}

#[test]
fn golden_correlated_bursts() {
    let s = builtin_scenario("correlated-bursts").expect("shipped");
    check_golden(&s.name, &run_scenario_file(&s));
}

#[test]
fn golden_adversarial_flash_faults() {
    let s = builtin_scenario("adversarial-flash-faults").expect("shipped");
    check_golden(&s.name, &run_scenario_file(&s));
}

#[test]
fn golden_cluster_replay_fleet() {
    // The fleet scenario snapshots the whole FleetResult (per-server
    // results + summary), sharded over 2 jobs.
    let s = builtin_scenario("cluster-replay").expect("shipped");
    let fleet = Fleet::new(s.fleet_config(145.0).expect("fleet section"));
    let manager = golden_manager(mitigation_for(&s));
    let result = fleet.run_jobs_with_workload(&manager, &s.workload, s.seed, 2, &s.faults);
    check_golden(&s.name, &result);
}

#[test]
fn scenario_replays_are_jobs_invariant() {
    // Byte-identical results whether the reps (or fleet servers) run on
    // 1 worker or 4 — the scenario layer must not perturb the sharded
    // seed derivation.
    for name in ["paper-synthetic", "adversarial-flash-faults"] {
        let s = builtin_scenario(name).expect("shipped");
        let sim = EdgeSimulation::new(s.sim_config(145.0));
        let manager = golden_manager(mitigation_for(&s));
        let serial =
            sim.run_many_workload_jobs_with_faults(&manager, &s.workload, 3, s.seed, 1, &s.faults);
        let sharded =
            sim.run_many_workload_jobs_with_faults(&manager, &s.workload, 3, s.seed, 4, &s.faults);
        assert_eq!(serial, sharded, "{name}: jobs changed the result");
    }
    let s = builtin_scenario("cluster-replay").expect("shipped");
    let fleet = Fleet::new(s.fleet_config(145.0).expect("fleet section"));
    let manager = golden_manager(mitigation_for(&s));
    let serial = fleet.run_jobs_with_workload(&manager, &s.workload, s.seed, 1, &s.faults);
    let sharded = fleet.run_jobs_with_workload(&manager, &s.workload, s.seed, 4, &s.faults);
    assert_eq!(serial, sharded, "cluster-replay: jobs changed the result");
}

/// `f64::to_bits` fingerprints of the adversarial scenario, pinned as
/// constants so a drift shows up even without the snapshot file (and
/// `ADAPEX_BLESS=1` cannot silently absorb it).
#[test]
fn adversarial_fault_fingerprints_are_pinned() {
    let s = builtin_scenario("adversarial-flash-faults").expect("shipped");
    let r = run_scenario_file(&s);
    let got = (
        r.offered,
        r.processed,
        r.faults.failed_reconfigs,
        r.faults.dropped_by_fault,
        r.faults.flood_arrivals,
        r.faults.stale_discarded,
        r.mean_accuracy.to_bits(),
        r.qoe().to_bits(),
        r.faults.time_degraded_s.to_bits(),
    );
    let want = (
        25726usize,
        22637usize,
        1usize,
        1436usize,
        2587usize,
        0usize,
        4605740502956606265u64,
        4604832116092826513u64,
        4611686018427387907u64,
    );
    assert_eq!(
        got, want,
        "adversarial scenario drifted from its pinned fault fingerprint"
    );
}
