//! Determinism and incrementality harness for the content-addressed
//! artifact cache: cache hits must reproduce a cold run byte-for-byte
//! (for any job count), a fully-warm re-run must touch no training at
//! all, corruption must degrade to recompute, and extending the sweep
//! must reuse every previously-built variant.

use adapex::generator::{Artifacts, GeneratorConfig, LibraryGenerator};
use adapex::CacheStats;
use adapex_dataset::DatasetKind;
use std::fs;
use std::path::{Path, PathBuf};

/// Self-cleaning scratch directory for one test's cache.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "adapex-cache-test-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp cache dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Fast-profile config trimmed to two variants per sweep (mirrors
/// `parallel_determinism.rs`), optionally cache-backed.
fn scenario(jobs: usize, rates: &[f64], cache: Option<&Path>) -> GeneratorConfig {
    let mut cfg = GeneratorConfig::fast(DatasetKind::Cifar10Like);
    cfg.pruning_rates = rates.to_vec();
    cfg.jobs = jobs;
    if let Some(dir) = cache {
        cfg = cfg.with_cache_dir(dir);
    }
    cfg
}

fn run(cfg: GeneratorConfig) -> (Artifacts, CacheStats, String) {
    let (artifacts, stats) = LibraryGenerator::new(cfg).generate_with_stats();
    let json = serde_json::to_string_pretty(&artifacts).expect("artifacts serialize");
    (artifacts, stats, json)
}

#[test]
fn cache_is_byte_identical_incremental_and_corruption_tolerant() {
    let tmp = TempDir::new("sweep");
    let rates = [0.0, 0.4];

    // Ground truth: the cache-disabled run this PR must not perturb.
    let (_, off_stats, baseline) = run(scenario(1, &rates, None));
    assert_eq!(off_stats, CacheStats::default(), "disabled cache counted probes");

    // Cold run populates the cache and must already match the baseline.
    let (_, cold_stats, cold) = run(scenario(1, &rates, Some(tmp.path())));
    assert_eq!(cold, baseline, "cache-enabled cold run diverged from cache-disabled run");
    assert_eq!(cold_stats.hits(), 0, "cold run cannot hit: {cold_stats:?}");
    assert_eq!(cold_stats.entry_misses, 4, "{cold_stats:?}");

    // Warm sequential run: pure hits, byte-identical artifacts, and no
    // training at all (every finished entry short-circuits, so even the
    // base checkpoints are never probed).
    let (_, warm_stats, warm) = run(scenario(1, &rates, Some(tmp.path())));
    assert_eq!(warm, cold, "warm jobs=1 artifacts diverged from cold run");
    assert!(warm_stats.all_hits(), "warm run missed: {warm_stats:?}");
    assert_eq!(warm_stats.entry_hits, 4, "{warm_stats:?}");
    assert_eq!(warm_stats.checkpoint_hits, 0, "{warm_stats:?}");

    // Warm parallel run: concurrent lookups agree byte-for-byte.
    let (_, par_stats, par) = run(scenario(4, &rates, Some(tmp.path())));
    assert_eq!(par, cold, "warm jobs=4 artifacts diverged from cold run");
    assert!(par_stats.all_hits(), "parallel warm run missed: {par_stats:?}");

    // Corrupt one finished entry on disk: the run must log a miss,
    // rebuild that entry from the finer-grained artifacts, and still
    // produce byte-identical output.
    let entry_file = find_artifact(tmp.path(), ".entry.json");
    fs::write(&entry_file, b"{ definitely not json").unwrap();
    let (_, hurt_stats, hurt) = run(scenario(1, &rates, Some(tmp.path())));
    assert_eq!(hurt, cold, "corrupt-entry recompute diverged from cold run");
    assert_eq!(hurt_stats.entry_misses, 1, "{hurt_stats:?}");
    assert_eq!(hurt_stats.entry_hits, 3, "{hurt_stats:?}");

    // Extended sweep (one new pruning rate): only the new variants are
    // built; every old entry and both base checkpoints are reused.
    let extended_rates = [0.0, 0.4, 0.6];
    let (ext_art, ext_stats, _) = run(scenario(2, &extended_rates, Some(tmp.path())));
    assert_eq!(ext_stats.entry_hits, 4, "{ext_stats:?}");
    assert_eq!(ext_stats.entry_misses, 2, "{ext_stats:?}");
    assert_eq!(
        ext_stats.checkpoint_hits, 2,
        "new variants must reuse both cached base models: {ext_stats:?}"
    );
    assert_eq!(
        ext_stats.checkpoint_misses, 2,
        "only the two new rate-0.6 variants may train: {ext_stats:?}"
    );

    // The shared prefix of the extended library is byte-identical to
    // the original sweep's entries.
    let (orig_art, _, _) = run(scenario(1, &rates, Some(tmp.path())));
    for (o, e) in orig_art.adapex.entries.iter().zip(&ext_art.adapex.entries) {
        assert_eq!(o, e, "extended sweep changed existing adapex entry {}", o.id);
    }
    for (o, e) in orig_art.pr_only.entries.iter().zip(&ext_art.pr_only.entries) {
        assert_eq!(o, e, "extended sweep changed existing pr_only entry {}", o.id);
    }
}

#[test]
fn warm_cache_is_job_count_invariant_for_fresh_populations() {
    // Populate with a parallel sweep, then read back sequentially: the
    // hit path must not depend on which job count *wrote* the cache.
    let tmp = TempDir::new("writer-jobs");
    let rates = [0.0, 0.3];
    let (_, _, cold) = run(scenario(4, &rates, Some(tmp.path())));
    let (_, warm_stats, warm) = run(scenario(1, &rates, Some(tmp.path())));
    assert_eq!(warm, cold, "jobs=4-written cache read back differently at jobs=1");
    assert!(warm_stats.all_hits(), "{warm_stats:?}");
}

/// First file under the cache's epoch directory with the given suffix.
fn find_artifact(cache_dir: &Path, suffix: &str) -> PathBuf {
    let epoch_dir = fs::read_dir(cache_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.is_dir())
        .expect("cache epoch directory exists");
    let mut files: Vec<PathBuf> = fs::read_dir(&epoch_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().ends_with(suffix))
        .collect();
    files.sort();
    files.into_iter().next().unwrap_or_else(|| {
        panic!("no {suffix} artifact found in {}", epoch_dir.display())
    })
}
