//! Determinism guarantees of the fault-injection layer.
//!
//! Three claims are pinned here:
//!
//! 1. **Pre-PR bit-identity** — a fault-free cold simulation is
//!    byte-identical to the simulator as it behaved *before* the fault
//!    layer existed. The constants below are `f64::to_bits`
//!    fingerprints captured on the pre-fault-layer revision; any change
//!    to an RNG draw, accounting order, or float expression on the
//!    fault-free path shows up here.
//! 2. **Fault-free plan ≡ plain run** — `run_with_faults(…,
//!    FaultPlan::none())` equals `run(…)` exactly, because an empty plan
//!    performs zero draws on its dedicated stream.
//! 3. **Job-count invariance under faults** — identical seeds and
//!    fault plan produce byte-identical `SimResult`s at any worker
//!    count; each repetition's fault stream is a pure function of
//!    `(plan.seed, seed + i)`.

use adapex::library::{Library, LibraryEntry, OperatingPoint};
use adapex::runtime::{MitigationConfig, RuntimeManager, SelectionPolicy};
use adapex_edge::{EdgeSimulation, FaultPlan, Scenario, SimConfig, SimResult, WorkloadConfig};
use finn_dataflow::ResourceUsage;

fn entry(id: usize, rate: f64, acc: f64, ips: f64) -> LibraryEntry {
    LibraryEntry {
        id,
        pruning_rate: rate,
        achieved_rate: rate,
        prune_exits: false,
        mean_exit_accuracy: acc,
        final_exit_accuracy: acc,
        resources: ResourceUsage::zero(),
        exit_resources: ResourceUsage::zero(),
        utilization: (0.1, 0.1, 0.1, 0.0),
        static_ips: ips,
        latency_to_exit_ms: vec![1.0],
        points: vec![OperatingPoint {
            confidence_threshold: 1.0,
            accuracy: acc,
            exit_fractions: vec![1.0],
            ips,
            avg_latency_ms: 2.0,
            power_w: 1.2,
            energy_per_inference_mj: 1.2 / ips * 1000.0,
        }],
    }
}

/// The exact manager the pre-PR fingerprints were captured with.
fn adaptive_manager() -> RuntimeManager {
    RuntimeManager::new(
        Library {
            entries: vec![entry(0, 0.0, 0.9, 650.0), entry(1, 0.5, 0.8, 1200.0)],
        },
        0.5,
        SelectionPolicy::ReconfigAware,
    )
}

fn sim() -> EdgeSimulation {
    EdgeSimulation::new(SimConfig::paper_default(145.0))
}

/// `(offered, processed, lost, reconfigs, acc_bits, power_bits,
/// lat_bits, energy_bits)` — captured on the pre-fault-layer revision.
type Fingerprint = (usize, usize, usize, usize, u64, u64, u64, u64);

fn fingerprint(r: &SimResult) -> Fingerprint {
    (
        r.offered,
        r.processed,
        r.lost,
        r.reconfig_count,
        r.mean_accuracy.to_bits(),
        r.mean_power_w.to_bits(),
        r.mean_latency_ms.to_bits(),
        r.energy_j.to_bits(),
    )
}

#[test]
fn fault_free_runs_match_pre_fault_layer_fingerprints() {
    let sim = sim();
    let expected: [(u64, Fingerprint); 3] = [
        (
            7,
            (
                14656,
                14169,
                487,
                3,
                0x3feb653d7486712e,
                0x3ff30870110a1c5a,
                0x400d3d56ec5c52f4,
                0x403dbd2f1a9fcc4c,
            ),
        ),
        (
            9,
            (
                14445,
                13934,
                511,
                4,
                0x3febe9b04b22a3a7,
                0x3ff2fa2f05a711bc,
                0x4010fabeda0af388,
                0x403da6e978d50bb5,
            ),
        ),
        (
            21,
            (
                16508,
                15744,
                764,
                5,
                0x3feae6167a616064,
                0x3ff2ebedfa44072c,
                0x40108c8d8748dc6f,
                0x403d90a3d70a4b35,
            ),
        ),
    ];
    for (seed, want) in expected {
        let r = sim.run(&mut adaptive_manager(), seed);
        assert_eq!(fingerprint(&r), want, "fault-free run drifted at seed {seed}");
        assert_eq!(r.trace.len(), 25);
        assert!(r.faults.is_clean());
    }
}

#[test]
fn shaped_fault_free_runs_match_pre_fault_layer_fingerprints() {
    let sim = sim();
    let cases: [(Scenario, Fingerprint); 2] = [
        (
            Scenario::Burst,
            (
                17897,
                16659,
                1238,
                2,
                0x3febd738d1758d92,
                0x3ff316b11c6d2723,
                0x4016151d46365352,
                0x403dd374bc6a8d27,
            ),
        ),
        (
            Scenario::Steady,
            (
                14959,
                14613,
                346,
                0,
                0x3fecccccccccc4b1,
                0x3ff3333333333c88,
                0x4015f99692a193c8,
                0x403e000000000e95,
            ),
        ),
    ];
    for (scenario, want) in cases {
        let trace = scenario.trace(WorkloadConfig::paper_default());
        let r = sim.run_with_shaped_trace(&mut adaptive_manager(), &trace, 11);
        assert_eq!(
            fingerprint(&r),
            want,
            "shaped {scenario} run drifted at seed 11"
        );
    }
}

#[test]
fn run_many_matches_pre_fault_layer_fingerprints() {
    let sim = sim();
    let results = sim.run_many_jobs(&adaptive_manager(), 4, 42, 1);
    let counts: Vec<(usize, usize, usize, usize)> = results
        .iter()
        .map(|r| (r.offered, r.processed, r.lost, r.reconfig_count))
        .collect();
    assert_eq!(
        counts,
        vec![
            (17122, 16289, 833, 5),
            (15995, 15613, 382, 2),
            (15482, 14958, 524, 4),
            (14037, 13811, 226, 0),
        ]
    );
}

#[test]
fn empty_plan_is_byte_identical_to_plain_runs() {
    let sim = sim();
    for seed in [7u64, 21, 1234] {
        let plain = sim.run(&mut adaptive_manager(), seed);
        let faulted = sim.run_with_faults(&mut adaptive_manager(), seed, &FaultPlan::none());
        assert_eq!(plain, faulted, "empty plan perturbed seed {seed}");
    }
    let trace = Scenario::Burst.trace(WorkloadConfig::paper_default());
    let plain = sim.run_with_shaped_trace(&mut adaptive_manager(), &trace, 11);
    let faulted =
        sim.run_with_shaped_trace_and_faults(&mut adaptive_manager(), &trace, 11, &FaultPlan::none());
    assert_eq!(plain, faulted);
}

#[test]
fn faulted_runs_are_job_count_invariant() {
    let sim = sim();
    let plan = FaultPlan::canned();
    for mitigation in [MitigationConfig::off(), MitigationConfig::recommended()] {
        let mut manager = adaptive_manager();
        manager.set_mitigation(mitigation);
        let serial = sim.run_many_jobs_with_faults(&manager, 6, 42, 1, &plan);
        let parallel = sim.run_many_jobs_with_faults(&manager, 6, 42, 4, &plan);
        assert_eq!(serial, parallel, "jobs=4 diverged from jobs=1");
        // And re-running is reproducible outright.
        assert_eq!(serial, sim.run_many_jobs_with_faults(&manager, 6, 42, 1, &plan));
    }
}

#[test]
fn faulted_shaped_runs_are_job_count_invariant() {
    let sim = sim();
    let plan = FaultPlan::canned();
    let trace = Scenario::Burst.trace(WorkloadConfig::paper_default());
    let manager = adaptive_manager();
    let serial = sim.run_many_shaped_jobs_with_faults(&manager, &trace, 5, 7, 1, &plan);
    let parallel = sim.run_many_shaped_jobs_with_faults(&manager, &trace, 5, 7, 4, &plan);
    assert_eq!(serial, parallel);
    assert!(
        serial.iter().any(|r| !r.faults.is_clean()),
        "the canned plan must actually inject faults"
    );
}

#[test]
fn fault_plan_env_round_trip_is_honoured() {
    // The env var is read through FaultPlan::from_env (the CLI and the
    // golden scenario suite go through it); the core simulator API
    // never consults it.
    let dir = std::env::temp_dir().join("adapex-fault-env-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plan.json");
    FaultPlan::canned().save_json(&path).unwrap();
    std::env::set_var(adapex_edge::FAULT_PLAN_ENV, &path);
    let loaded = FaultPlan::from_env().unwrap().expect("env var is set");
    std::env::remove_var(adapex_edge::FAULT_PLAN_ENV);
    assert_eq!(loaded, FaultPlan::canned());
    assert_eq!(FaultPlan::from_env().unwrap(), None);
}
