//! Tick-loop ↔ event-engine equivalence suite.
//!
//! The event-driven engine (`crates/edge/src/engine.rs`) replaced the
//! 1 ms tick loop as the default simulation path; the legacy loop is
//! kept as `run_*_tick_reference_*`. This suite pins the refactor's
//! core contract: **bit-identical `SimResult`s** — same counters, same
//! float bit patterns, same per-period trace — across seeds, shaped
//! scenarios, fault plans and off-default configs. Results are compared
//! both structurally and as serialized JSON bytes.
//!
//! It also pins the fleet layer's sharding contract: a fleet run is
//! byte-identical at any `--jobs` value, and each shard equals a
//! standalone single-server simulation.

use adapex::library::{Library, LibraryEntry, OperatingPoint};
use adapex::runtime::{MitigationConfig, RuntimeManager, SelectionPolicy};
use adapex_edge::{
    EdgeSimulation, FaultPlan, Fleet, FleetConfig, PlacementPolicy, Scenario, SimConfig, SimResult,
    WorkloadConfig,
};
use finn_dataflow::ResourceUsage;

fn entry(id: usize, rate: f64, points: &[(f64, f64, f64)]) -> LibraryEntry {
    let points: Vec<OperatingPoint> = points
        .iter()
        .map(|&(ct, acc, ips)| OperatingPoint {
            confidence_threshold: ct,
            accuracy: acc,
            exit_fractions: vec![1.0],
            ips,
            avg_latency_ms: 2.0,
            power_w: 1.2,
            energy_per_inference_mj: 1.2 / ips * 1000.0,
        })
        .collect();
    let acc = points[0].accuracy;
    LibraryEntry {
        id,
        pruning_rate: rate,
        achieved_rate: rate,
        prune_exits: false,
        mean_exit_accuracy: acc,
        final_exit_accuracy: acc,
        resources: ResourceUsage::zero(),
        exit_resources: ResourceUsage::zero(),
        utilization: (0.1, 0.1, 0.1, 0.0),
        static_ips: points[0].ips,
        latency_to_exit_ms: vec![1.0],
        points,
    }
}

/// Same three-entry library as the golden suite: reconfigurations and
/// threshold changes both fire on the paper workload.
fn manager(mitigation: MitigationConfig) -> RuntimeManager {
    let library = Library {
        entries: vec![
            entry(0, 0.0, &[(0.9, 0.88, 700.0), (0.3, 0.82, 1150.0)]),
            entry(1, 0.5, &[(0.9, 0.80, 1400.0), (0.3, 0.76, 1900.0)]),
            entry(2, 0.8, &[(0.9, 0.70, 2500.0)]),
        ],
    };
    let mut m = RuntimeManager::new(library, 0.75, SelectionPolicy::ReconfigAware);
    m.set_mitigation(mitigation);
    m
}

/// Asserts structural equality *and* byte-identical JSON so the claim
/// "bit-identical" is literal: every f64 serializes from the same bits.
fn assert_bit_identical(des: &SimResult, tick: &SimResult, what: &str) {
    assert_eq!(des, tick, "{what}: DES result differs from tick loop");
    let a = serde_json::to_string(des).expect("serialize DES result");
    let b = serde_json::to_string(tick).expect("serialize tick result");
    assert_eq!(a, b, "{what}: serialized bytes differ");
}

#[test]
fn des_matches_tick_loop_on_the_paper_scenario() {
    let sim = EdgeSimulation::new(SimConfig::paper_default(145.0));
    for plan in [FaultPlan::none(), FaultPlan::canned()] {
        for seed in [1, 7, 1213, 0xDEAD] {
            let des = sim.run_with_faults(&mut manager(MitigationConfig::off()), seed, &plan);
            let tick =
                sim.run_tick_reference_with_faults(&mut manager(MitigationConfig::off()), seed, &plan);
            assert_bit_identical(&des, &tick, &format!("paper seed {seed}"));
        }
    }
}

#[test]
fn des_matches_tick_loop_on_shaped_scenarios() {
    let sim = EdgeSimulation::new(SimConfig::paper_default(145.0));
    for scenario in Scenario::all() {
        let trace = scenario.trace(WorkloadConfig::paper_default());
        for (plan, mitigation) in [
            (FaultPlan::none(), MitigationConfig::off()),
            (FaultPlan::canned(), MitigationConfig::off()),
            (FaultPlan::canned(), MitigationConfig::recommended()),
        ] {
            let des = sim.run_with_shaped_trace_and_faults(
                &mut manager(mitigation),
                &trace,
                1213,
                &plan,
            );
            let tick = sim.run_shaped_tick_reference_with_faults(
                &mut manager(mitigation),
                &trace,
                1213,
                &plan,
            );
            assert_bit_identical(&des, &tick, &format!("scenario {scenario}"));
        }
    }
}

#[test]
fn des_matches_tick_loop_off_the_default_config() {
    // Off-default tick size, monitor period, queue depth and reconfig
    // latency: the engine's precomputed boundaries (monitor cadence,
    // settle ticks, window toggles) must track the tick loop everywhere,
    // not just at the paper's 1 ms / 1 s / 8-deep operating point.
    let mut cfg = SimConfig::paper_default(90.0);
    cfg.tick_s = 0.0025;
    cfg.monitor_period_s = 0.75;
    cfg.queue_capacity = 3;
    cfg.workload.duration_s = 13.0;
    cfg.workload.deviation_period_s = 2.0;
    let sim = EdgeSimulation::new(cfg);
    for plan in [FaultPlan::none(), FaultPlan::canned()] {
        for seed in [2, 99] {
            let des = sim.run_with_faults(&mut manager(MitigationConfig::recommended()), seed, &plan);
            let tick = sim.run_tick_reference_with_faults(
                &mut manager(MitigationConfig::recommended()),
                seed,
                &plan,
            );
            assert_bit_identical(&des, &tick, &format!("off-default seed {seed}"));
        }
    }
}

#[test]
fn fleet_runs_are_byte_identical_across_job_counts() {
    let mut cfg = FleetConfig::paper_default(6, 10, 145.0);
    cfg.sim.workload.duration_s = 5.0;
    let fleet = Fleet::new(cfg);
    let m = manager(MitigationConfig::off());
    let serial = fleet.run_jobs(&m, 42, 1);
    let sharded = fleet.run_jobs(&m, 42, 4);
    assert_eq!(serial, sharded, "fleet result differs across job counts");
    assert_eq!(
        serde_json::to_string(&serial).expect("serialize"),
        serde_json::to_string(&sharded).expect("serialize"),
        "fleet bytes differ across job counts"
    );
}

#[test]
fn fleet_shards_equal_standalone_simulations() {
    use adapex_edge::FLEET_SALT;
    use adapex_tensor::rng::derive_stream;

    let mut cfg = FleetConfig::paper_default(3, 12, 145.0);
    cfg.sim.workload.duration_s = 5.0;
    cfg.placement = PlacementPolicy::RoundRobin;
    let fleet = Fleet::new(cfg);
    let m = manager(MitigationConfig::off());
    let result = fleet.run_jobs_with_faults(&m, 7, 2, &FaultPlan::canned());
    let placement = fleet.placement(7);
    for (s, assignment) in placement.iter().enumerate() {
        let mut workload = fleet.config().sim.workload;
        workload.cameras = assignment.cameras.len();
        workload.ips_per_camera = assignment.nominal_ips / assignment.cameras.len() as f64;
        let sim = EdgeSimulation::new(SimConfig {
            workload,
            ..fleet.config().sim.clone()
        });
        let standalone = sim.run_with_faults(
            &mut manager(MitigationConfig::off()),
            derive_stream(7, s as u64, FLEET_SALT),
            &FaultPlan::canned(),
        );
        assert_bit_identical(&result.servers[s], &standalone, &format!("server {s}"));
    }
}
