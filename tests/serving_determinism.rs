//! Determinism and accounting properties of the serving runtime.
//!
//! Three layers are pinned here:
//!
//! * the **virtual data plane** ([`ServeSim`]) replays identically and
//!   conserves every request under arbitrary arrival jitter and queue
//!   pressure (full queues drop with accounting, never silently);
//! * the **real executor** ([`BatchExecutor`]) produces byte-identical
//!   verdicts at any worker count and for any batch split;
//! * the **DES serving scenario** ([`ServeScenario`], the manager and
//!   fault plan in the loop) replays byte-for-byte against golden
//!   snapshots under `tests/golden/`. Re-bless intentional changes
//!   with `ADAPEX_BLESS=1 cargo test -p adapex-integration --test
//!   serving_determinism`.

use adapex::library::{Library, LibraryEntry, OperatingPoint};
use adapex::runtime::{RuntimeManager, SelectionPolicy};
use adapex::serve::{
    generate_arrivals, AdmissionPolicy, Arrival, ArrivalPattern, PointServiceModel, ServeConfig,
    ServeSim, SloClass,
};
use adapex_edge::{CameraDropout, FaultWindow, ServeScenario, ServeScenarioConfig, WorkloadConfig};
use adapex_nn::cnv::{CnvConfig, ExitsConfig};
use adapex_nn::layers::Activation;
use adapex_nn::serve::{BatchExecutor, BatchVerdicts, EnginePlan, ExecutorConfig};
use adapex_tensor::rng::rng_from_seed;
use finn_dataflow::ResourceUsage;
use proptest::prelude::*;
use rand::RngExt as _;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn two_class_config(gold_cap: usize, be_cap: usize, max_batch: usize) -> ServeConfig {
    let mut gold = SloClass::new("gold", 20_000);
    gold.priority = 2;
    gold.queue_capacity = gold_cap;
    let mut be = SloClass::new("best-effort", 100_000);
    be.priority = 1;
    be.queue_capacity = be_cap;
    ServeConfig {
        classes: vec![gold, be],
        max_batch,
        batch_deadline_us: 2_000,
        workers: 1,
        admission: AdmissionPolicy::ExitAware,
        dispatch_overhead_us: 20,
    }
}

fn model(seed: u64) -> PointServiceModel {
    PointServiceModel::new(&[0.7, 0.2, 0.1], vec![300, 600, 1_000], seed)
}

/// Jittered arrival trace: base Poisson process plus bounded per-event
/// jitter, re-sorted (the engine requires sorted input).
fn jittered_arrivals(rate: f64, seconds: f64, jitter_us: u64, seed: u64) -> Vec<Arrival> {
    let mut arrivals = generate_arrivals(ArrivalPattern::Steady, rate, seconds, &[1.0, 2.0], seed);
    let mut rng = rng_from_seed(seed ^ 0x717);
    for a in &mut arrivals {
        let j = rng.random_range(0..(2 * jitter_us + 1).max(1));
        a.at_us = (a.at_us + j).saturating_sub(jitter_us);
    }
    arrivals.sort_by_key(|a| a.at_us);
    arrivals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same trace, same config → byte-identical reports; and every
    /// offered request is accounted (completed + dropped + shed +
    /// residual), whatever the jitter does to batch composition.
    #[test]
    fn virtual_plane_replays_and_conserves(
        rate in 500.0f64..6_000.0,
        jitter_us in 0u64..5_000,
        seed in 0u64..1_000,
    ) {
        let arrivals = jittered_arrivals(rate, 2.0, jitter_us, seed);
        let config = two_class_config(64, 256, 16);
        let m = model(seed);
        let a = ServeSim::run(config.clone(), &m, &arrivals);
        let b = ServeSim::run(config, &m, &arrivals);
        prop_assert_eq!(
            serde_json::to_string(&a).expect("serialize"),
            serde_json::to_string(&b).expect("serialize")
        );
        prop_assert!(a.conservation_holds());
        prop_assert_eq!(a.offered, arrivals.len() as u64);
    }

    /// Queue-pressure edge: capacities small enough to overflow must
    /// drop with per-class accounting — no silent loss, and drops only
    /// when a queue actually hit its high-water mark.
    #[test]
    fn full_queues_drop_with_accounting(
        gold_cap in 1usize..8,
        be_cap in 1usize..8,
        rate in 8_000.0f64..20_000.0,
        seed in 0u64..1_000,
    ) {
        let config = two_class_config(gold_cap, be_cap, 8);
        let arrivals = jittered_arrivals(rate, 1.0, 100, seed);
        let r = ServeSim::run(config, &model(seed), &arrivals);
        prop_assert!(a_counts_hold(&r));
        prop_assert!(r.dropped_full > 0, "overflow must register as drops");
        let class_drops: u64 = r.per_class.iter().map(|c| c.dropped_full).sum();
        prop_assert_eq!(class_drops, r.dropped_full);
        for (c, s) in r.per_class.iter().enumerate() {
            if s.dropped_full > 0 {
                let cap = [gold_cap, be_cap][c];
                prop_assert_eq!(
                    s.queue_high_water as usize, cap,
                    "drops imply the queue was at capacity"
                );
            }
        }
    }

    /// Real-executor verdicts are byte-identical at any worker count
    /// and invariant to how requests are split into batches.
    #[test]
    fn executor_verdicts_are_worker_and_batch_invariant(
        n in 1usize..24,
        threshold in 0.05f32..0.9,
        workers in 2usize..6,
        seed in 0u64..100,
    ) {
        let net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 3);
        let per: usize = net.input_dims.iter().product();
        let mut rng = rng_from_seed(seed);
        let mut pixels = vec![0.0f32; n * per];
        for v in pixels.iter_mut() {
            *v = rng.random::<f32>();
        }
        let x = Activation::new(pixels.clone(), n, net.input_dims.clone());

        let mut one = BatchVerdicts::default();
        BatchExecutor::new(&net, &ExecutorConfig {
            threshold, workers: 1, engine: EnginePlan::Auto,
        }).run_batch(&x, &mut one);

        let mut many = BatchVerdicts::default();
        BatchExecutor::new(&net, &ExecutorConfig {
            threshold, workers, engine: EnginePlan::Auto,
        }).run_batch(&x, &mut many);
        prop_assert_eq!(&one.exit, &many.exit);
        prop_assert_eq!(&one.class, &many.class);
        let bits = |v: &BatchVerdicts| -> Vec<u32> {
            v.confidence.iter().map(|c| c.to_bits()).collect()
        };
        prop_assert_eq!(bits(&one), bits(&many));

        // Split the same requests into two chunks: per-sample verdicts
        // must not change.
        let cut = (n / 2).max(1).min(n);
        let mut exec = BatchExecutor::new(&net, &ExecutorConfig {
            threshold, workers: 1, engine: EnginePlan::Auto,
        });
        let mut merged_exit = Vec::new();
        let mut merged_conf = Vec::new();
        let mut part = BatchVerdicts::default();
        for (lo, hi) in [(0, cut), (cut, n)] {
            if lo == hi { continue; }
            let chunk = Activation::new(
                pixels[lo * per..hi * per].to_vec(), hi - lo, net.input_dims.clone(),
            );
            exec.run_batch(&chunk, &mut part);
            merged_exit.extend_from_slice(&part.exit);
            merged_conf.extend(part.confidence.iter().map(|c| c.to_bits()));
        }
        prop_assert_eq!(merged_exit, one.exit);
        prop_assert_eq!(merged_conf, bits(&one));
    }
}

/// `conservation_holds` plus per-class ↔ global consistency.
fn a_counts_hold(r: &adapex::serve::ServeReport) -> bool {
    let class_completed: u64 = r.per_class.iter().map(|c| c.completed).sum();
    r.conservation_holds() && class_completed == r.completed
}

// --- DES serving scenario goldens. ---------------------------------

fn scenario_entry(id: usize, rate: f64, ips: f64, acc: f64) -> LibraryEntry {
    LibraryEntry {
        id,
        pruning_rate: rate,
        achieved_rate: rate,
        prune_exits: false,
        mean_exit_accuracy: acc,
        final_exit_accuracy: acc,
        resources: ResourceUsage::zero(),
        exit_resources: ResourceUsage::zero(),
        utilization: (0.1, 0.1, 0.1, 0.0),
        static_ips: ips,
        latency_to_exit_ms: vec![0.4, 1.2],
        points: vec![
            OperatingPoint {
                confidence_threshold: 0.9,
                accuracy: acc,
                exit_fractions: vec![0.6, 0.4],
                ips,
                avg_latency_ms: 1.0,
                power_w: 1.2,
                energy_per_inference_mj: 1.2 / ips * 1000.0,
            },
            OperatingPoint {
                confidence_threshold: 0.3,
                accuracy: acc - 0.05,
                exit_fractions: vec![0.85, 0.15],
                ips: ips * 1.4,
                avg_latency_ms: 0.8,
                power_w: 1.2,
                energy_per_inference_mj: 1.2 / (ips * 1.4) * 1000.0,
            },
        ],
    }
}

fn scenario_manager() -> RuntimeManager {
    RuntimeManager::new(
        Library {
            entries: vec![
                scenario_entry(0, 0.0, 700.0, 0.88),
                scenario_entry(1, 0.5, 1_400.0, 0.80),
            ],
        },
        0.7,
        SelectionPolicy::ReconfigAware,
    )
}

fn scenario_config() -> ServeScenarioConfig {
    let mut cfg = ServeScenarioConfig::paper_default(145.0);
    cfg.workload = WorkloadConfig {
        cameras: 10,
        ips_per_camera: 60.0,
        duration_s: 8.0,
        deviation: 0.3,
        deviation_period_s: 2.0,
    };
    cfg.seed = 1213;
    cfg
}

fn check_golden(name: &str, value: &impl serde::Serialize) {
    let path = golden_dir().join(format!("{name}.json"));
    let mut actual = serde_json::to_string_pretty(value).expect("serialize");
    actual.push('\n');
    if std::env::var("ADAPEX_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, &actual).expect("bless golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with ADAPEX_BLESS=1 to generate",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "scenario `{name}` drifted from its golden snapshot; if the change \
         is intentional, re-bless with ADAPEX_BLESS=1"
    );
}

#[test]
fn golden_serve_steady() {
    let result = ServeScenario::run(&scenario_config(), scenario_manager());
    assert!(result.report.conservation_holds());
    check_golden("serve_steady", &result);
}

#[test]
fn golden_serve_dropout_fault() {
    let mut cfg = scenario_config();
    cfg.faults.dropouts.push(CameraDropout {
        window: FaultWindow {
            start_s: 2.0,
            end_s: 5.0,
        },
        fraction: 0.4,
    });
    let result = ServeScenario::run(&cfg, scenario_manager());
    assert!(result.report.conservation_holds());
    assert!(result.dropped_by_fault > 0, "dropout window must lose frames");
    check_golden("serve_dropout_fault", &result);
}

#[test]
fn des_scenario_replays_identically() {
    let cfg = scenario_config();
    let a = ServeScenario::run(&cfg, scenario_manager());
    let b = ServeScenario::run(&cfg, scenario_manager());
    assert_eq!(
        serde_json::to_string(&a).expect("serialize"),
        serde_json::to_string(&b).expect("serialize"),
        "DES serving scenario must replay byte-identically"
    );
}
