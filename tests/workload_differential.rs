//! Synthetic ↔ trace differential: the trace-driven workload layer must
//! be a *lossless* re-encoding of the built-in synthetic generator.
//!
//! Three equivalences, all byte-exact on the full `SimResult`:
//!
//! 1. `WorkloadSpec::Synthetic(paper_default)` through the new
//!    workload-spec path ≡ the built-in `run_many` path, at any
//!    `--jobs` (same arrival RNG stream, same trace sampling).
//! 2. A synthetic run *exported* as a piecewise trace file and replayed
//!    from disk ≡ the original run (per repetition, since each rep
//!    samples its own ±30 % rates).
//! 3. The committed `paper-synthetic` scenario ≡ both of the above at
//!    its own seed.

use adapex::library::{Library, LibraryEntry, OperatingPoint};
use adapex::runtime::{MitigationConfig, RuntimeManager, SelectionPolicy};
use adapex_edge::{
    builtin_scenario, EdgeSimulation, FaultPlan, SimConfig, WorkloadConfig, WorkloadSpec,
};
use adapex_tensor::rng::derive_sequential;
use finn_dataflow::ResourceUsage;

fn entry(id: usize, rate: f64, points: &[(f64, f64, f64)]) -> LibraryEntry {
    let points: Vec<OperatingPoint> = points
        .iter()
        .map(|&(ct, acc, ips)| OperatingPoint {
            confidence_threshold: ct,
            accuracy: acc,
            exit_fractions: vec![1.0],
            ips,
            avg_latency_ms: 2.0,
            power_w: 1.2,
            energy_per_inference_mj: 1.2 / ips * 1000.0,
        })
        .collect();
    let acc = points[0].accuracy;
    LibraryEntry {
        id,
        pruning_rate: rate,
        achieved_rate: rate,
        prune_exits: false,
        mean_exit_accuracy: acc,
        final_exit_accuracy: acc,
        resources: ResourceUsage::zero(),
        exit_resources: ResourceUsage::zero(),
        utilization: (0.1, 0.1, 0.1, 0.0),
        static_ips: points[0].ips,
        latency_to_exit_ms: vec![1.0],
        points,
    }
}

fn manager() -> RuntimeManager {
    let library = Library {
        entries: vec![
            entry(0, 0.0, &[(0.9, 0.88, 700.0), (0.3, 0.82, 1150.0)]),
            entry(1, 0.5, &[(0.9, 0.80, 1400.0), (0.3, 0.76, 1900.0)]),
            entry(2, 0.8, &[(0.9, 0.70, 2500.0)]),
        ],
    };
    let mut m = RuntimeManager::new(library, 0.75, SelectionPolicy::ReconfigAware);
    m.set_mitigation(MitigationConfig::off());
    m
}

const SEED: u64 = 0xD1FF;

#[test]
fn synthetic_spec_path_is_bit_identical_to_builtin_path() {
    let sim = EdgeSimulation::new(SimConfig::paper_default(145.0));
    let spec = WorkloadSpec::paper_default();
    let m = manager();
    let plan = FaultPlan::none();
    for jobs in [1usize, 4] {
        let builtin = sim.run_many_jobs_with_faults(&m, 4, SEED, jobs, &plan);
        let via_spec = sim.run_many_workload_jobs_with_faults(&m, &spec, 4, SEED, jobs, &plan);
        assert_eq!(builtin, via_spec, "jobs={jobs}: spec path diverged");
    }
}

#[test]
fn synthetic_spec_path_is_bit_identical_under_faults() {
    // Fault injection draws from its own seeded streams; the workload
    // layer must not perturb them either.
    let sim = EdgeSimulation::new(SimConfig::paper_default(145.0));
    let spec = WorkloadSpec::paper_default();
    let mut m = manager();
    m.set_mitigation(MitigationConfig::recommended());
    let plan = FaultPlan::canned();
    for jobs in [1usize, 4] {
        let builtin = sim.run_many_jobs_with_faults(&m, 2, SEED, jobs, &plan);
        let via_spec = sim.run_many_workload_jobs_with_faults(&m, &spec, 2, SEED, jobs, &plan);
        assert_eq!(builtin, via_spec, "jobs={jobs}: spec path diverged under faults");
    }
}

#[test]
fn exported_trace_files_replay_each_repetition_bit_identically() {
    // `run_many` gives repetition i the derived seed
    // `derive_sequential(seed, i)` and samples fresh ±30 % rates from
    // it. Exporting each repetition's sampled trace as a piecewise
    // workload file and replaying it from disk must reproduce that
    // repetition exactly: same arrival stream, same decisions, same
    // floats.
    let sim = EdgeSimulation::new(SimConfig::paper_default(145.0));
    let m = manager();
    let plan = FaultPlan::none();
    let reps = 3usize;
    let many = sim.run_many_jobs_with_faults(&m, reps, SEED, 1, &plan);

    let dir = std::env::temp_dir().join(format!("adapex-workload-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (i, expected) in many.iter().enumerate() {
        let rep_seed = derive_sequential(SEED, i as u64);
        let trace = WorkloadConfig::paper_default().sample(rep_seed);
        let exported = WorkloadSpec::from_trace(&trace);
        let path = dir.join(format!("rep{i}.json"));
        exported.save_json(&path).unwrap();
        let loaded = WorkloadSpec::load_json(&path).unwrap();
        assert_eq!(loaded, exported, "rep {i}: file roundtrip changed the spec");

        let mut mgr = manager();
        let replayed = sim.run_with_workload_and_faults(&mut mgr, &loaded, rep_seed, &plan);
        assert_eq!(&replayed, expected, "rep {i}: trace replay diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn paper_synthetic_scenario_matches_builtin_generator_at_its_seed() {
    let scenario = builtin_scenario("paper-synthetic").expect("shipped scenario");
    let sim = EdgeSimulation::new(scenario.sim_config(145.0));
    let mut a = manager();
    let builtin = sim.run_with_faults(&mut a, scenario.seed, &scenario.faults);
    let mut b = manager();
    let via_file =
        sim.run_with_workload_and_faults(&mut b, &scenario.workload, scenario.seed, &scenario.faults);
    assert_eq!(builtin, via_file);
}
