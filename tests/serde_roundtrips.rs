//! Serialization round-trips for every persistable artifact: trained
//! networks, IR, folding configs and libraries survive JSON untouched
//! (the design-time/runtime split of the paper depends on this).

use adapex_nn::cnv::{CnvConfig, ExitsConfig};
use adapex_nn::layers::Activation;
use adapex_nn::network::EarlyExitNetwork;
use finn_dataflow::{FoldingConfig, ModelIr};

#[test]
fn trained_network_roundtrips_and_still_infers() {
    use adapex_dataset::{DatasetKind, SyntheticConfig};
    use adapex_nn::train::{TrainConfig, Trainer};
    let data = SyntheticConfig::new(DatasetKind::Cifar10Like)
        .with_sizes(40, 10)
        .generate();
    let mut net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 1);
    Trainer::new(TrainConfig {
        epochs: 1,
        ..TrainConfig::fast()
    })
    .fit(&mut net, &data, 1);

    let json = serde_json::to_string(&net).expect("serialize network");
    let mut back: EarlyExitNetwork = serde_json::from_str(&json).expect("parse network");

    // Identical inference on both copies (eval mode; caches are skipped
    // in serde and rebuilt on demand).
    let x = Activation::new(
        (0..3 * 32 * 32).map(|v| (v as f32 * 0.013).sin()).collect(),
        1,
        vec![3, 32, 32],
    );
    let a = net.forward(&x, false);
    let b = back.forward(&x, false);
    assert_eq!(a.len(), b.len());
    for (ya, yb) in a.iter().zip(&b) {
        assert_eq!(ya.data, yb.data);
    }
}

#[test]
fn ir_and_folding_roundtrip() {
    let net = CnvConfig::tiny().build_early_exit(43, &ExitsConfig::paper_default(), 2);
    let ir = ModelIr::from_summary(&net.summarize());
    let ir_back: ModelIr =
        serde_json::from_str(&serde_json::to_string(&ir).expect("serialize ir")).expect("parse ir");
    assert_eq!(ir, ir_back);

    let folding = FoldingConfig::balanced(&ir, 100_000, 2.0);
    let json = folding.to_json().expect("folding json");
    let folding_back = FoldingConfig::from_json(&json).expect("parse folding");
    assert_eq!(folding, folding_back);
}

#[test]
fn pruned_network_roundtrips() {
    use adapex_prune::{ConstraintMap, PruneConfig, Pruner};
    let net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 1);
    let (pruned, _) = Pruner::new(PruneConfig {
        rate: 0.5,
        prune_exits: true,
    })
    .prune(&net, &ConstraintMap::uniform(2, 2));
    let back: EarlyExitNetwork =
        serde_json::from_str(&serde_json::to_string(&pruned).expect("serialize")).expect("parse");
    assert_eq!(pruned, back);
}

mod sim_config_roundtrips {
    use adapex_edge::{FleetConfig, PlacementPolicy, SimConfig, WorkloadConfig};
    use proptest::prelude::*;

    fn workload_strategy() -> impl Strategy<Value = WorkloadConfig> {
        (1usize..200, 1.0f64..120.0, 1.0f64..60.0, 0.0f64..0.9, 0.5f64..10.0).prop_map(
            |(cameras, ips_per_camera, duration_s, deviation, deviation_period_s)| WorkloadConfig {
                cameras,
                ips_per_camera,
                duration_s,
                deviation,
                deviation_period_s,
            },
        )
    }

    fn sim_strategy() -> impl Strategy<Value = SimConfig> {
        (
            workload_strategy(),
            0.0005f64..0.01,
            0.1f64..5.0,
            1usize..64,
            0.0f64..500.0,
            0.0f64..5.0,
        )
            .prop_map(
                |(workload, tick_s, monitor_period_s, queue_capacity, reconfig_time_ms, reconfig_power_w)| {
                    SimConfig {
                        workload,
                        tick_s,
                        monitor_period_s: monitor_period_s.max(tick_s),
                        queue_capacity,
                        reconfig_time_ms,
                        reconfig_power_w,
                    }
                },
            )
    }

    fn fleet_strategy() -> impl Strategy<Value = FleetConfig> {
        (
            1usize..2000,
            1usize..200,
            0.0f64..0.9,
            any::<bool>().prop_map(|least_loaded| {
                if least_loaded {
                    PlacementPolicy::LeastLoaded
                } else {
                    PlacementPolicy::RoundRobin
                }
            }),
            sim_strategy(),
        )
            .prop_map(
                |(servers, cameras_per_server, camera_spread, placement, sim)| FleetConfig {
                    servers,
                    cameras_per_server,
                    camera_spread,
                    placement,
                    sim,
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn workload_config_roundtrips(cfg in workload_strategy()) {
            let back: WorkloadConfig =
                serde_json::from_str(&serde_json::to_string(&cfg).expect("serialize"))
                    .expect("parse");
            prop_assert_eq!(cfg, back);
        }

        #[test]
        fn sim_config_roundtrips(cfg in sim_strategy()) {
            let back: SimConfig =
                serde_json::from_str(&serde_json::to_string(&cfg).expect("serialize"))
                    .expect("parse");
            prop_assert_eq!(cfg, back);
        }

        #[test]
        fn fleet_config_roundtrips(cfg in fleet_strategy()) {
            let back: FleetConfig =
                serde_json::from_str(&serde_json::to_string(&cfg).expect("serialize"))
                    .expect("parse");
            prop_assert_eq!(cfg, back);
        }
    }
}

mod scenario_file_roundtrips {
    use adapex_edge::{
        builtin_library, ClusterReplayWorkload, CorrelatedBurstWorkload, DiurnalWorkload,
        FlashCrowdWorkload, PiecewiseWorkload, ScenarioFile, SyntheticWorkload, WorkloadConfig,
        WorkloadSpec, SCENARIO_SCHEMA_VERSION,
    };
    use proptest::prelude::*;

    fn workload_strategy() -> impl Strategy<Value = WorkloadConfig> {
        (1usize..200, 1.0f64..120.0, 1.0f64..60.0, 0.0f64..0.9, 0.5f64..10.0).prop_map(
            |(cameras, ips_per_camera, duration_s, deviation, deviation_period_s)| WorkloadConfig {
                cameras,
                ips_per_camera,
                duration_s,
                deviation,
                deviation_period_s,
            },
        )
    }

    /// Valid (post-`validate`) specs across every generator kind: a
    /// kind index dispatches over shared parameter draws (the vendored
    /// proptest has no `prop_oneof`, so union-by-index it is).
    fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
        (
            workload_strategy(),
            0usize..6,
            prop::collection::vec(0.0f64..5_000.0, 0..24),
            prop::collection::vec(0.0f64..1.0, 2..48),
            (0.0f64..1.0, 0.1f64..10.0, 0.0f64..20.0, 0.1f64..10.0, 1.0f64..4.0),
            (0.0f64..10.0, 0.5f64..20.0, 0.0f64..3.0, 0.0f64..1.0),
        )
            .prop_map(|(config, kind, rates, utilization, p, q)| {
                let (frac, ramp, start, decay, peak) = p;
                let (mean_events, burst_duration_s, extra, camera_fraction) = q;
                match kind {
                    0 => WorkloadSpec::Synthetic(SyntheticWorkload { config }),
                    1 => WorkloadSpec::Piecewise(PiecewiseWorkload { config, rates }),
                    2 => WorkloadSpec::Diurnal(DiurnalWorkload {
                        config,
                        min_multiplier: frac,
                        max_multiplier: frac + extra,
                        cycles: ramp,
                        phase: camera_fraction,
                    }),
                    3 => WorkloadSpec::FlashCrowd(FlashCrowdWorkload {
                        config,
                        start_s: start,
                        ramp_s: ramp,
                        hold_s: start,
                        decay_s: decay,
                        peak_multiplier: peak,
                    }),
                    4 => WorkloadSpec::ClusterReplay(ClusterReplayWorkload {
                        config,
                        utilization,
                        scale: ramp,
                    }),
                    _ => WorkloadSpec::CorrelatedBursts(CorrelatedBurstWorkload {
                        config,
                        mean_events,
                        burst_duration_s,
                        burst_multiplier: 1.0 + extra,
                        camera_fraction,
                    }),
                }
            })
    }

    fn scenario_strategy() -> impl Strategy<Value = ScenarioFile> {
        (spec_strategy(), any::<u64>(), 0usize..10_000).prop_map(|(spec, seed, n)| {
            ScenarioFile::new(format!("scenario-{n}"), spec, seed)
        })
    }

    /// Injected keys that collide with no real field of any kind.
    const UNKNOWN_KEYS: &[&str] = &["mystery", "typo_s", "zz_extra", "not_a_field"];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn workload_spec_roundtrips(spec in spec_strategy()) {
            prop_assert!(spec.validate().is_ok());
            let json = serde_json::to_string(&spec).expect("serialize");
            let back: WorkloadSpec = serde_json::from_str(&json).expect("parse");
            prop_assert_eq!(back, spec);
        }

        #[test]
        fn scenario_file_roundtrips(file in scenario_strategy()) {
            let json = serde_json::to_string_pretty(&file).expect("serialize");
            let back = ScenarioFile::from_json_str(&json).expect("parse");
            prop_assert_eq!(back, file);
        }

        #[test]
        fn unknown_spec_fields_are_rejected(spec in spec_strategy(), k in 0usize..4) {
            // Splice an unknown key into the spec's top level; the
            // strict parser must reject it for every generator kind.
            let key = UNKNOWN_KEYS[k];
            let json = serde_json::to_string(&spec).expect("serialize");
            let tainted = json.replacen('{', &format!("{{\"{key}\":0,"), 1);
            prop_assert!(tainted != json, "replacement must hit");
            prop_assert!(
                serde_json::from_str::<WorkloadSpec>(&tainted).is_err(),
                "accepted unknown field `{}`", key
            );
        }

        #[test]
        fn scenario_version_mismatch_is_rejected(file in scenario_strategy(), v in 2u32..1000) {
            let json = serde_json::to_string(&file).expect("serialize");
            let from = format!("\"schema_version\":{SCENARIO_SCHEMA_VERSION}");
            let bumped = json.replacen(&from, &format!("\"schema_version\":{v}"), 1);
            prop_assert!(bumped != json, "replacement must hit");
            let err = ScenarioFile::from_json_str(&bumped).unwrap_err();
            prop_assert!(err.contains("schema_version"), "error: {}", err);
        }

        #[test]
        fn truncated_scenarios_error_instead_of_panicking(
            file in scenario_strategy(),
            frac in 0.0f64..1.0,
        ) {
            let json = serde_json::to_string(&file).expect("serialize");
            let cut = ((json.len() as f64 * frac) as usize).min(json.len() - 1);
            prop_assert!(
                ScenarioFile::from_json_str(&json[..cut]).is_err(),
                "prefix of {} bytes parsed", cut
            );
        }
    }

    #[test]
    fn committed_library_roundtrips_and_validates() {
        for file in builtin_library() {
            file.validate().expect("valid builtin");
            let json = serde_json::to_string_pretty(&file).expect("serialize");
            let back = ScenarioFile::from_json_str(&json).expect("parse");
            assert_eq!(back, file, "{}", file.name);
        }
    }
}

#[test]
fn dataset_roundtrips() {
    use adapex_dataset::{DatasetKind, SyntheticConfig};
    let data = SyntheticConfig::new(DatasetKind::GtsrbLike)
        .with_sizes(43, 43)
        .generate();
    let back: adapex_dataset::SyntheticDataset =
        serde_json::from_str(&serde_json::to_string(&data).expect("serialize")).expect("parse");
    assert_eq!(data, back);
}
