//! Property-based tests of the edge simulator: conservation laws,
//! monotonicity in capacity, and determinism.

use adapex::library::{Library, LibraryEntry, OperatingPoint};
use adapex::runtime::{RuntimeManager, SelectionPolicy};
use adapex_edge::{EdgeSimulation, SimConfig, WorkloadConfig};
use finn_dataflow::ResourceUsage;
use proptest::prelude::*;

fn static_entry(ips: f64, accuracy: f64, power_w: f64) -> LibraryEntry {
    LibraryEntry {
        id: 0,
        pruning_rate: 0.0,
        achieved_rate: 0.0,
        prune_exits: false,
        mean_exit_accuracy: accuracy,
        final_exit_accuracy: accuracy,
        resources: ResourceUsage::zero(),
        exit_resources: ResourceUsage::zero(),
        utilization: (0.1, 0.1, 0.1, 0.0),
        static_ips: ips,
        latency_to_exit_ms: vec![1.0],
        points: vec![OperatingPoint {
            confidence_threshold: 1.0,
            accuracy,
            exit_fractions: vec![1.0],
            ips,
            avg_latency_ms: 1.5,
            power_w,
            energy_per_inference_mj: power_w / ips * 1000.0,
        }],
    }
}

fn static_manager(ips: f64) -> RuntimeManager {
    RuntimeManager::new(
        Library {
            entries: vec![static_entry(ips, 0.85, 1.1)],
        },
        0.0,
        SelectionPolicy::Oblivious,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// offered == processed + lost, always.
    #[test]
    fn requests_are_conserved(capacity in 100.0f64..2500.0, seed in 0u64..1000) {
        let sim = EdgeSimulation::new(SimConfig::paper_default(145.0));
        let r = sim.run(&mut static_manager(capacity), seed);
        prop_assert_eq!(r.offered, r.processed + r.lost);
        prop_assert!(r.mean_power_w > 0.0);
        prop_assert!(r.qoe() <= r.mean_accuracy + 1e-12);
    }

    /// More capacity never loses more inferences (same seed).
    #[test]
    fn loss_is_monotone_in_capacity(seed in 0u64..500) {
        let sim = EdgeSimulation::new(SimConfig::paper_default(145.0));
        let slow = sim.run(&mut static_manager(350.0), seed);
        let mid = sim.run(&mut static_manager(600.0), seed);
        let fast = sim.run(&mut static_manager(1500.0), seed);
        prop_assert!(slow.lost >= mid.lost, "{} < {}", slow.lost, mid.lost);
        prop_assert!(mid.lost >= fast.lost, "{} < {}", mid.lost, fast.lost);
    }

    /// Identical seeds give identical runs; different seeds differ in
    /// their arrival pattern.
    #[test]
    fn runs_are_deterministic(seed in 0u64..500) {
        let sim = EdgeSimulation::new(SimConfig::paper_default(145.0));
        let a = sim.run(&mut static_manager(700.0), seed);
        let b = sim.run(&mut static_manager(700.0), seed);
        prop_assert_eq!(a, b);
    }

    /// Queue-induced latency: a saturated server reports strictly higher
    /// latency than an overprovisioned one.
    #[test]
    fn saturation_shows_in_latency(seed in 0u64..200) {
        let sim = EdgeSimulation::new(SimConfig::paper_default(145.0));
        let over = sim.run(&mut static_manager(2000.0), seed);
        let under = sim.run(&mut static_manager(400.0), seed);
        prop_assert!(under.mean_latency_ms > over.mean_latency_ms);
    }
}

#[test]
fn workload_mean_tracks_nominal() {
    // Averaged over many seeds, the sampled rates center on 600 IPS.
    let cfg = WorkloadConfig::paper_default();
    let mean: f64 = (0..200).map(|s| cfg.sample(s).mean_rate()).sum::<f64>() / 200.0;
    assert!(
        (mean - cfg.nominal_ips()).abs() < 15.0,
        "mean workload {mean} far from nominal"
    );
}

#[test]
fn trace_samples_cover_the_episode() {
    let sim = EdgeSimulation::new(SimConfig::paper_default(145.0));
    let r = sim.run(&mut static_manager(700.0), 5);
    // 25 s at a 1 s monitor period: 24-25 samples.
    assert!(
        (24..=25).contains(&r.trace.len()),
        "unexpected trace length {}",
        r.trace.len()
    );
    for pair in r.trace.windows(2) {
        assert!(pair[1].t > pair[0].t);
    }
}

#[test]
fn energy_integrates_power_over_time() {
    let sim = EdgeSimulation::new(SimConfig::paper_default(145.0));
    let r = sim.run(&mut static_manager(900.0), 11);
    // One static operating point at 1.1 W for 25 s ≈ 27.5 J.
    assert!(
        (r.energy_j - 1.1 * 25.0).abs() < 0.5,
        "energy {} J",
        r.energy_j
    );
    assert!((r.mean_power_w - 1.1).abs() < 0.02);
}
