//! Property-based tests of the central AdaPEx invariant: any pruning
//! rate, applied under constraints derived from a folding configuration,
//! yields a network that (a) still computes the right shapes and (b)
//! always compiles against that same folding — the paper's guarantee
//! that "pruned CNN models get synthesized to the accelerators
//! configured by the user" (Sec. IV-A2).

use adapex::generator::derive_constraints;
use adapex_nn::cnv::{CnvConfig, ExitsConfig};
use adapex_nn::layers::{Activation, Layer};
use adapex_prune::{dataflow_aware_keep_count, LayerConstraint, PruneConfig, Pruner};
use finn_dataflow::{compile, FoldingConfig, FpgaDevice, ModelIr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every (rate, mode, folding-budget) combination prunes into a
    /// network that compiles with the unpruned model's folding.
    #[test]
    fn pruned_networks_always_compile(
        rate in 0.0f64..=1.0,
        prune_exits in any::<bool>(),
        target in 50_000u64..400_000,
    ) {
        let net = CnvConfig::scaled(8).build_early_exit(10, &ExitsConfig::paper_default(), 1);
        let ir = ModelIr::from_summary(&net.summarize());
        let folding = FoldingConfig::balanced(&ir, target, 2.0);
        let constraints = derive_constraints(&net, &folding);
        let (mut pruned, report) =
            Pruner::new(PruneConfig { rate, prune_exits }).prune(&net, &constraints);

        // (a) shapes survive.
        let x = Activation::zeros(1, &[3, 32, 32]);
        let outs = pruned.forward(&x, false);
        prop_assert_eq!(outs.len(), 3);
        for o in &outs {
            prop_assert_eq!(o.dims.clone(), vec![10]);
        }
        // (b) the shared folding still divides every layer.
        let pruned_ir = ModelIr::from_summary(&pruned.summarize());
        let acc = compile(&pruned_ir, &folding, &FpgaDevice::zcu104(), 100.0);
        prop_assert!(acc.is_ok(), "rate {} mode {}: {:?}", rate, prune_exits, acc.err());
        // (c) achieved never exceeds requested.
        prop_assert!(report.overall_rate() <= rate + 1e-9);
    }

    /// The keep-count procedure always satisfies both divisors, never
    /// returns zero, and is monotone non-increasing in the rate.
    #[test]
    fn keep_count_properties(
        ch_out in 1usize..512,
        rate in 0.0f64..=1.0,
        pe in 1usize..16,
        simd in 1usize..16,
    ) {
        let c = LayerConstraint::new(pe, simd);
        let keep = dataflow_aware_keep_count(ch_out, rate, c);
        prop_assert!(keep >= 1 && keep <= ch_out);
        // Either the constraints hold, or the layer was left whole
        // because not even r=0 satisfies them.
        let legal = keep.is_multiple_of(pe) && keep.is_multiple_of(simd);
        prop_assert!(legal || keep == ch_out, "keep {} of {} under pe {} simd {}", keep, ch_out, pe, simd);
        // Monotonicity against a smaller rate.
        let keep_lighter = dataflow_aware_keep_count(ch_out, rate / 2.0, c);
        prop_assert!(keep_lighter >= keep);
    }

    /// Pruning then summarizing agrees with summarizing then checking
    /// channel counts: the structural view never desynchronizes.
    #[test]
    fn summary_tracks_surgery(rate in 0.0f64..0.9) {
        let net = CnvConfig::tiny().build_early_exit(10, &ExitsConfig::paper_default(), 3);
        let constraints = adapex_prune::ConstraintMap::uniform(2, 2);
        let (pruned, _) = Pruner::new(PruneConfig { rate, prune_exits: true })
            .prune(&net, &constraints);
        let summary = pruned.summarize();
        // Conv layer infos must match the actual layer fields.
        let mut idx = 0;
        for layer in &pruned.backbone {
            if let Layer::Conv(c) = layer {
                loop {
                    if let adapex_nn::network::LayerInfo::Conv { c_in, c_out, .. } =
                        &summary.backbone[idx]
                    {
                        prop_assert_eq!(*c_in, c.c_in);
                        prop_assert_eq!(*c_out, c.c_out);
                        idx += 1;
                        break;
                    }
                    idx += 1;
                }
            }
        }
    }
}

#[test]
fn full_sweep_compiles_at_paper_rates() {
    // The exact 18-step sweep of the paper, both modes.
    let net = CnvConfig::scaled(8).build_early_exit(10, &ExitsConfig::paper_default(), 1);
    let ir = ModelIr::from_summary(&net.summarize());
    let folding = FoldingConfig::balanced(&ir, 215_000, 2.0);
    let constraints = derive_constraints(&net, &folding);
    let device = FpgaDevice::zcu104();
    for step in 0..18 {
        let rate = step as f64 * 0.05;
        for prune_exits in [false, true] {
            let (pruned, _) =
                Pruner::new(PruneConfig { rate, prune_exits }).prune(&net, &constraints);
            let pruned_ir = ModelIr::from_summary(&pruned.summarize());
            let acc = compile(&pruned_ir, &folding, &device, 100.0)
                .unwrap_or_else(|e| panic!("rate {rate} mode {prune_exits}: {e}"));
            assert!(acc.report().throughput_ips > 0.0);
        }
    }
}

#[test]
fn heavier_pruning_never_slows_the_accelerator() {
    let net = CnvConfig::scaled(8).build_early_exit(10, &ExitsConfig::paper_default(), 1);
    let ir = ModelIr::from_summary(&net.summarize());
    let folding = FoldingConfig::balanced(&ir, 215_000, 2.0);
    let constraints = derive_constraints(&net, &folding);
    let device = FpgaDevice::zcu104();
    let mut last_ips = 0.0f64;
    let mut last_mem_equiv = u64::MAX;
    for rate in [0.0, 0.25, 0.5, 0.85] {
        let (pruned, _) = Pruner::new(PruneConfig {
            rate,
            prune_exits: false,
        })
        .prune(&net, &constraints);
        let pruned_ir = ModelIr::from_summary(&pruned.summarize());
        let acc = compile(&pruned_ir, &folding, &device, 100.0).expect("compiles");
        let r = acc.report();
        assert!(
            r.throughput_ips >= last_ips,
            "IPS must not drop with pruning: {} -> {}",
            last_ips,
            r.throughput_ips
        );
        // Pruning may convert a BRAM memory into LUTRAM (BRAM down, LUT
        // up), so the invariant is on the combined memory-equivalent
        // footprint: one BRAM36 = 36864 bits = 4608 LUTRAM-LUTs.
        let mem_equiv = r.resources.lut + 4608 * r.resources.bram36;
        assert!(
            mem_equiv <= last_mem_equiv,
            "memory footprint must not grow with pruning: {} -> {}",
            last_mem_equiv,
            mem_equiv
        );
        last_ips = r.throughput_ips;
        last_mem_equiv = mem_equiv;
    }
}
