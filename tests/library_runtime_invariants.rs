//! Property-based tests of the library search and the runtime manager's
//! adaptation policies over randomly generated libraries.

use adapex::library::{Library, LibraryEntry, OperatingPoint};
use adapex::runtime::{RuntimeManager, SelectionPolicy};
use finn_dataflow::ResourceUsage;
use proptest::prelude::*;

/// Strategy: one operating point with bounded fields.
fn point_strategy() -> impl Strategy<Value = OperatingPoint> {
    (0.0f64..=1.0, 0.2f64..=0.95, 100.0f64..3000.0, 0.5f64..5.0, 0.7f64..1.5).prop_map(
        |(ct, acc, ips, lat, pw)| OperatingPoint {
            confidence_threshold: ct,
            accuracy: acc,
            exit_fractions: vec![1.0],
            ips,
            avg_latency_ms: lat,
            power_w: pw,
            energy_per_inference_mj: pw / ips * 1000.0,
        },
    )
}

/// Strategy: a library of 1..6 entries with 1..8 points each.
fn library_strategy() -> impl Strategy<Value = Library> {
    prop::collection::vec(
        (0.2f64..0.95, prop::collection::vec(point_strategy(), 1..8)),
        1..6,
    )
    .prop_map(|entries| Library {
        entries: entries
            .into_iter()
            .enumerate()
            .map(|(id, (mean_acc, points))| LibraryEntry {
                id,
                pruning_rate: id as f64 * 0.1,
                achieved_rate: id as f64 * 0.1,
                prune_exits: false,
                mean_exit_accuracy: mean_acc,
                final_exit_accuracy: mean_acc,
                resources: ResourceUsage::zero(),
                exit_resources: ResourceUsage::zero(),
                utilization: (0.1, 0.1, 0.1, 0.0),
                static_ips: 1000.0,
                latency_to_exit_ms: vec![1.0],
                points,
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Strict selection results actually satisfy both requirements.
    #[test]
    fn strict_selection_is_sound(
        lib in library_strategy(),
        required_ips in 50.0f64..3500.0,
        min_acc in 0.1f64..0.99,
    ) {
        if let Some((e, p)) = lib.select_strict(required_ips, min_acc, None) {
            let point = &lib.entries[e].points[p];
            prop_assert!(point.ips >= required_ips);
            prop_assert!(point.accuracy >= min_acc);
            // No better-ranked entry also qualifies.
            for (ei, entry) in lib.entries.iter().enumerate() {
                if entry.mean_exit_accuracy > lib.entries[e].mean_exit_accuracy {
                    let qualifies = entry
                        .points
                        .iter()
                        .any(|q| q.ips >= required_ips && q.accuracy >= min_acc);
                    prop_assert!(!qualifies, "entry {} outranks {} but was skipped", ei, e);
                }
            }
        }
    }

    /// The fallback chain always yields something from a non-empty
    /// library, and the fallback is only used when strict fails.
    #[test]
    fn select_always_returns_and_prefers_strict(
        lib in library_strategy(),
        required_ips in 50.0f64..3500.0,
        min_acc in 0.1f64..0.99,
    ) {
        let picked = lib.select(required_ips, min_acc);
        prop_assert!(picked.is_some());
        if let Some(strict) = lib.select_strict(required_ips, min_acc, None) {
            prop_assert_eq!(picked.expect("checked"), strict);
        }
    }

    /// The reconfiguration-aware manager never reconfigures when the
    /// current entry has a qualifying point within the accuracy
    /// hysteresis of the global best (a free CT move suffices).
    #[test]
    fn reconfig_aware_avoids_unneeded_reconfigs(
        lib in library_strategy(),
        loads in prop::collection::vec(50.0f64..3500.0, 1..12),
    ) {
        use adapex::runtime::RECONFIG_HYSTERESIS;
        let min_acc = 0.3;
        let mut manager = RuntimeManager::new(lib.clone(), min_acc, SelectionPolicy::ReconfigAware);
        let mut current: Option<usize> = None;
        for load in loads {
            let acc = |pick: (usize, usize)| lib.entries[pick.0].points[pick.1].accuracy;
            let local = current.and_then(|cur| lib.select_strict(load, min_acc, Some(cur)));
            let global = lib.select_strict(load, min_acc, None);
            let free_move_suffices = match (local, global) {
                (Some(l), Some(g)) => acc(l) + RECONFIG_HYSTERESIS >= acc(g),
                (Some(_), None) => true,
                _ => false,
            };
            let d = manager.decide(load);
            if free_move_suffices {
                prop_assert!(
                    !d.reconfig,
                    "reconfigured from {:?} at load {} despite a sufficient CT move",
                    current, load
                );
            }
            current = Some(d.entry);
        }
    }

    /// Decisions are pure in the observed load: same load twice in a row
    /// changes nothing the second time.
    #[test]
    fn repeated_load_is_stable(
        lib in library_strategy(),
        load in 50.0f64..3500.0,
    ) {
        let mut manager = RuntimeManager::new(lib, 0.3, SelectionPolicy::ReconfigAware);
        let first = manager.decide(load);
        let second = manager.decide(load);
        prop_assert_eq!(first.entry, second.entry);
        prop_assert_eq!(first.point, second.point);
        prop_assert!(!second.reconfig);
    }

    /// Throughput-greedy picks at least as fast a point as the paper's
    /// policy would (it sacrifices accuracy for speed).
    #[test]
    fn throughput_greedy_is_fastest(
        lib in library_strategy(),
        load in 50.0f64..3500.0,
    ) {
        let min_acc = 0.3;
        let mut greedy = RuntimeManager::new(lib.clone(), min_acc, SelectionPolicy::ThroughputGreedy);
        let mut paper = RuntimeManager::new(lib.clone(), min_acc, SelectionPolicy::ReconfigAware);
        let dg = greedy.decide(load);
        let dp = paper.decide(load);
        let ips = |d: &adapex::runtime::Decision| lib.entries[d.entry].points[d.point].ips;
        // Greedy is the max-IPS qualified point; if the paper's pick is
        // accuracy-qualified, greedy must be at least as fast.
        let paper_point = &lib.entries[dp.entry].points[dp.point];
        if paper_point.accuracy >= min_acc {
            prop_assert!(ips(&dg) + 1e-9 >= ips(&dp));
        }
    }
}
