//! Golden scenario regression suite.
//!
//! Runs a fixed manager through the Steady, Burst and fault-laden Burst
//! scenarios and compares the **full serialized `SimResult`** (counts,
//! float metrics, per-period trace, fault counters) against JSON
//! snapshots under `tests/golden/`. Any behavioural drift — an extra
//! RNG draw, a reordered accumulation, a changed decision — shows up as
//! a readable JSON diff instead of a mysterious metric shift.
//!
//! To re-bless after an *intentional* behaviour change:
//!
//! ```text
//! ADAPEX_BLESS=1 cargo test -p adapex-integration --test golden_scenarios
//! ```
//!
//! The fault-laden scenario replays the plan named by
//! `$ADAPEX_FAULT_PLAN` when set (CI points it at
//! `tests/golden/fault_plan_canned.json`, which **is** the canned plan,
//! so results are identical either way) and `FaultPlan::canned()`
//! otherwise.

use adapex::library::{Library, LibraryEntry, OperatingPoint};
use adapex::runtime::{MitigationConfig, RuntimeManager, SelectionPolicy};
use adapex_edge::{EdgeSimulation, FaultPlan, Scenario, SimConfig, SimResult, WorkloadConfig};
use finn_dataflow::ResourceUsage;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/integration; the goldens live at the
    // repository root next to the integration test sources.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn entry(id: usize, rate: f64, points: &[(f64, f64, f64)]) -> LibraryEntry {
    let points: Vec<OperatingPoint> = points
        .iter()
        .map(|&(ct, acc, ips)| OperatingPoint {
            confidence_threshold: ct,
            accuracy: acc,
            exit_fractions: vec![1.0],
            ips,
            avg_latency_ms: 2.0,
            power_w: 1.2,
            energy_per_inference_mj: 1.2 / ips * 1000.0,
        })
        .collect();
    let acc = points[0].accuracy;
    LibraryEntry {
        id,
        pruning_rate: rate,
        achieved_rate: rate,
        prune_exits: false,
        mean_exit_accuracy: acc,
        final_exit_accuracy: acc,
        resources: ResourceUsage::zero(),
        exit_resources: ResourceUsage::zero(),
        utilization: (0.1, 0.1, 0.1, 0.0),
        static_ips: points[0].ips,
        latency_to_exit_ms: vec![1.0],
        points,
    }
}

/// The fixed golden manager: accurate/pruned/degraded-headroom entries
/// with threshold-only fallback points (mirrors the fault bench).
fn golden_manager(mitigation: MitigationConfig) -> RuntimeManager {
    let library = Library {
        entries: vec![
            entry(0, 0.0, &[(0.9, 0.88, 700.0), (0.3, 0.82, 1150.0)]),
            entry(1, 0.5, &[(0.9, 0.80, 1400.0), (0.3, 0.76, 1900.0)]),
            entry(2, 0.8, &[(0.9, 0.70, 2500.0)]),
        ],
    };
    let mut m = RuntimeManager::new(library, 0.75, SelectionPolicy::ReconfigAware);
    m.set_mitigation(mitigation);
    m
}

const GOLDEN_SEED: u64 = 1213;

fn run_scenario(scenario: Scenario, plan: &FaultPlan, mitigation: MitigationConfig) -> SimResult {
    let sim = EdgeSimulation::new(SimConfig::paper_default(145.0));
    let trace = scenario.trace(WorkloadConfig::paper_default());
    let mut manager = golden_manager(mitigation);
    sim.run_with_shaped_trace_and_faults(&mut manager, &trace, GOLDEN_SEED, plan)
}

fn check_golden(name: &str, result: &SimResult) {
    let path = golden_dir().join(format!("{name}.json"));
    let mut actual = serde_json::to_string_pretty(result).expect("serialize SimResult");
    actual.push('\n');
    if std::env::var("ADAPEX_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, &actual).expect("bless golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with ADAPEX_BLESS=1 to generate",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "scenario `{name}` drifted from its golden snapshot; if the change \
         is intentional, re-bless with ADAPEX_BLESS=1"
    );
}

/// The plan used by the fault-laden golden: `$ADAPEX_FAULT_PLAN` when
/// set (CI pins it to the canned plan's JSON), canned otherwise.
fn fault_plan() -> FaultPlan {
    FaultPlan::from_env()
        .expect("readable fault plan")
        .unwrap_or_else(FaultPlan::canned)
}

#[test]
fn canned_fault_plan_file_matches_the_code() {
    // The committed JSON and FaultPlan::canned() must stay in lockstep:
    // CI replays the file, the tests replay the constructor.
    let path = golden_dir().join("fault_plan_canned.json");
    if std::env::var("ADAPEX_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        FaultPlan::canned().save_json(&path).expect("bless canned plan");
        return;
    }
    let on_disk = FaultPlan::load_json(&path).unwrap_or_else(|e| {
        panic!(
            "missing canned plan {} ({e}); run with ADAPEX_BLESS=1 to generate",
            path.display()
        )
    });
    assert_eq!(on_disk, FaultPlan::canned());
}

#[test]
fn golden_steady() {
    check_golden(
        "steady",
        &run_scenario(Scenario::Steady, &FaultPlan::none(), MitigationConfig::off()),
    );
}

#[test]
fn golden_burst() {
    check_golden(
        "burst",
        &run_scenario(Scenario::Burst, &FaultPlan::none(), MitigationConfig::off()),
    );
}

#[test]
fn golden_burst_faults_mitigated() {
    check_golden(
        "burst_faults_mitigated",
        &run_scenario(Scenario::Burst, &fault_plan(), MitigationConfig::recommended()),
    );
}

#[test]
fn golden_burst_faults_unmitigated() {
    check_golden(
        "burst_faults_unmitigated",
        &run_scenario(Scenario::Burst, &fault_plan(), MitigationConfig::off()),
    );
}
